"""Vectorised partial BIST (``q`` LSBs off-chip) over whole wafers.

:class:`BatchPartialBistEngine` runs the paper's Figure-2 partial-BIST flow
— on-chip verification of bits ``q+1 .. n`` against a counter clocked by
bit ``q``, tester-side capture of the ``q`` observed LSBs, code
reconstruction and off-chip histogram DNL/INL — across the *device axis*,
reproducing the scalar :class:`~repro.core.partial_engine.PartialBistEngine`
accept/reject decisions bit for bit.

The engine is a thin orchestration layer over the shared vectorised kernel
(:mod:`repro.core.kernel`): the scalar engine calls the same kernel
functions with one row, this engine calls them with thousands.  Two
acquisition paths mirror the full-BIST batch engine:

**Event path** (no transition noise).  Every device sees the identical
    rising ramp, so the acquisition is fully described by the
    transition-crossing events (one batched :func:`numpy.searchsorted` of
    all transition levels into the ramp).  Between crossings the output
    code — and with it the reference counter, the reconstructed code and
    the histogram bin — is constant, so every per-sample quantity of the
    scalar flow collapses to an ``O(devices x codes)`` computation over
    the crossing events weighted by segment lengths.  The key identity:
    the reconstruction's wrap counter and the on-chip reference counter
    are clocked by the same falling edges of bit ``q``, so one cumulative
    sum drives both.

**Noisy path**.  Per-device input noise is drawn in device order from the
    shared generator — consuming the stream exactly as a scalar loop over
    the devices would — and each row is quantised individually
    (:func:`repro.core.kernel.batch_quantise_rows`), with the per-sample
    kernel functions running over the materialised code matrix.

Unlike the full BIST, the partial scheme ships ``samples x q`` bits per
device to the tester; the result records that volume so the economics
stations can price the insertion accordingly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Union

import numpy as np

from repro.adc.ideal import IdealADC
from repro.adc.population import DevicePopulation
from repro.core.backend import backend_scope, resolve_backend_name
from repro.core.bist_scheme import PartialBistPartition
from repro.core.engine import PopulationBistResult
from repro.core.kernel import (
    batch_code_histogram,
    batch_histogram_linearity,
    batch_msb_reference,
    batch_quantise_rows,
    batch_reconstruct_codes,
    packed_crossing_events,
    shared_crossing_indices,
)
from repro.core.partial_engine import PartialBistConfig, PartialBistEngine
from repro.production.batch_engine import (
    BatchChipBistResult,
    _chip_noise_rows,
    _event_chunk_size,
    _stream_chunk_size,
    _validated_chip_seeds,
    build_chip_result,
    population_truth_mask,
    resolve_population_matrix,
)
from repro.production.execution import (
    ExecutionPlan,
    ShardExecutor,
    iter_slices,
    resolve_plan_seed,
)
from repro.production.lot import Wafer
from repro.signals.ramp import RampStimulus
from repro.telemetry.core import current_telemetry

__all__ = ["BatchPartialBistResult", "BatchPartialBistEngine"]

RngLike = Union[int, np.random.Generator, None]


@dataclass(frozen=True)
class _PartialShardContext:
    """Per-run state shared by every shard of one batched partial run.

    Computed once by :meth:`BatchPartialBistEngine.prepare` and shipped to
    each shard; holds the shared stimulus and partition, no per-device
    state.
    """

    ramp_voltages: np.ndarray
    n_samples: int
    lsb_volts: float
    partition: PartialBistPartition
    backend: str = "numpy"


@dataclass
class BatchPartialBistResult:
    """Per-device outcome of one batched partial-BIST run.

    All arrays have one entry per device; ``passed`` matches
    :attr:`repro.core.partial_engine.PartialBistResult.passed` of the
    scalar engine run on each device individually.
    """

    n_devices: int
    passed: np.ndarray
    linearity_passed: np.ndarray
    msb_passed: np.ndarray
    reconstruction_error_rate: np.ndarray
    measured_max_dnl_lsb: np.ndarray
    measured_max_inl_lsb: np.ndarray
    partition: PartialBistPartition
    samples_taken: int

    @property
    def n_accepted(self) -> int:
        """Number of devices the partial BIST accepted."""
        return int(np.count_nonzero(self.passed))

    @property
    def n_rejected(self) -> int:
        """Number of devices rejected."""
        return self.n_devices - self.n_accepted

    @property
    def accept_fraction(self) -> float:
        """Fraction of devices accepted."""
        return self.n_accepted / self.n_devices if self.n_devices else 0.0

    @property
    def bits_captured_per_device(self) -> int:
        """Output bits the tester records per device (``samples x q``)."""
        return self.samples_taken * self.partition.q

    @property
    def off_chip_bits_transferred(self) -> int:
        """Total tester capture volume of the batch."""
        return self.bits_captured_per_device * self.n_devices

    @classmethod
    def merge(cls, shards: "Sequence[BatchPartialBistResult]"
              ) -> "BatchPartialBistResult":
        """Concatenate per-shard results (in shard order) into one batch.

        The shards must come from one run: same partition and acquisition
        length.  This is the ``merge`` leg of the
        :class:`~repro.production.execution.WaferEngine` protocol.
        """
        shards = list(shards)
        if not shards:
            raise ValueError("cannot merge an empty shard list")
        first = shards[0]
        if any(s.partition != first.partition
               or s.samples_taken != first.samples_taken for s in shards):
            raise ValueError("shards disagree on the partition or "
                             "acquisition length")
        return cls(
            n_devices=sum(s.n_devices for s in shards),
            passed=np.concatenate([s.passed for s in shards]),
            linearity_passed=np.concatenate([s.linearity_passed
                                             for s in shards]),
            msb_passed=np.concatenate([s.msb_passed for s in shards]),
            reconstruction_error_rate=np.concatenate(
                [s.reconstruction_error_rate for s in shards]),
            measured_max_dnl_lsb=np.concatenate(
                [s.measured_max_dnl_lsb for s in shards]),
            measured_max_inl_lsb=np.concatenate(
                [s.measured_max_inl_lsb for s in shards]),
            partition=first.partition,
            samples_taken=first.samples_taken)


class BatchPartialBistEngine:
    """Run the Figure-2 partial BIST on every device of a batch at once.

    Parameters
    ----------
    config:
        The measurement configuration, shared with the scalar
        :class:`~repro.core.partial_engine.PartialBistEngine`; both engines
        derive the identical ramp, partition and decision logic from it.
    """

    def __init__(self, config: PartialBistConfig, *,
                 backend: Optional[str] = None) -> None:
        self.config = config
        self._backend = backend
        # Partition selection and single-device runs are one implementation:
        # the scalar engine is kept as the batch-of-1 reference.
        self._scalar = PartialBistEngine(config)

    # ------------------------------------------------------------------ #
    # Partition
    # ------------------------------------------------------------------ #

    def partition_for(self, full_scale: float,
                      sample_rate: float) -> PartialBistPartition:
        """The partition used for a batch sharing this geometry/clock."""
        proxy = IdealADC(self.config.n_bits, full_scale, sample_rate)
        return self._scalar.partition_for(proxy)

    # ------------------------------------------------------------------ #
    # Entry points
    # ------------------------------------------------------------------ #

    def run_wafer(self, wafer: Wafer, rng: RngLike = None,
                  chunk_size: Optional[int] = None,
                  plan: Optional[ExecutionPlan] = None
                  ) -> BatchPartialBistResult:
        """Run the batched partial BIST on every die of a wafer."""
        spec = wafer.spec
        return self.run_transitions(wafer.transitions,
                                    full_scale=spec.full_scale,
                                    sample_rate=spec.sample_rate,
                                    rng=rng, chunk_size=chunk_size,
                                    plan=plan)

    def run_chips(self, wafer: Wafer, converters_per_chip: int,
                  rng: RngLike = None,
                  chunk_size: Optional[int] = None,
                  plan: Optional[ExecutionPlan] = None
                  ) -> BatchChipBistResult:
        """Batched multi-converter IC test under the partial scheme.

        Consecutive dies form one chip sharing the stimulus ramp; the chip
        passes when every converter on it passes its partial BIST.  With
        transition noise configured, chip ``c`` draws its per-converter
        noise from independent child generators seeded by
        :func:`~repro.production.batch_engine.chip_noise_seeds` — the same
        controller-parity scheme the full-BIST chip mode uses, so
        ``PartialBistEngine.run(die, rng=default_rng(child))`` with the
        chip's spawned children reproduces each converter's verdict bit
        for bit.
        """
        if self.config.transition_noise_lsb > 0.0:
            return self._run_chips_noisy(wafer, converters_per_chip, rng,
                                         chunk_size=chunk_size, plan=plan)
        result = self.run_wafer(wafer, rng=rng, chunk_size=chunk_size,
                                plan=plan)
        return build_chip_result(result.passed, converters_per_chip,
                                 result.samples_taken,
                                 wafer.spec.sample_rate)

    def _run_chips_noisy(self, wafer: Wafer, converters_per_chip: int,
                         rng: RngLike,
                         chunk_size: Optional[int] = None,
                         plan: Optional[ExecutionPlan] = None
                         ) -> BatchChipBistResult:
        """Chip mode with per-converter noise seeds (controller parity).

        Per-chip noise depends only on the chip's seed, so sharding the
        chip axis over workers is plan-invariant by construction.
        """
        if rng is not None and not isinstance(rng, (int, np.integer)):
            raise ValueError(
                "noisy chip runs take an integer seed (or None) so the "
                "per-converter child seeds match the scalar "
                "PartialBistEngine replay")
        transitions = wafer.transitions
        spec = wafer.spec
        ctx = self.prepare(transitions, spec.full_scale, spec.sample_rate)
        seeds = _validated_chip_seeds(transitions, converters_per_chip, rng)

        executor = ShardExecutor(plan if plan is not None
                                 else ExecutionPlan())
        bounds = executor.plan.shard_bounds(transitions.shape[0],
                                            align=converters_per_chip)
        chunk = (chunk_size if chunk_size is not None
                 else executor.plan.chunk_size)
        results = executor.map(
            self._noisy_chip_shard,
            [(ctx, transitions[lo:hi],
              seeds[lo // converters_per_chip:hi // converters_per_chip],
              converters_per_chip, chunk)
             for lo, hi in bounds])
        result = BatchPartialBistResult.merge(results)
        return build_chip_result(result.passed, converters_per_chip,
                                 ctx.n_samples, spec.sample_rate)

    def _noisy_chip_shard(self, ctx: _PartialShardContext,
                          transitions: np.ndarray, seeds: np.ndarray,
                          converters_per_chip: int,
                          chunk_size: Optional[int] = None
                          ) -> BatchPartialBistResult:
        """One chip-aligned device slice of a noisy chip-mode run."""
        cfg = self.config
        n_chips = transitions.shape[0] // converters_per_chip
        sigma = cfg.transition_noise_lsb * ctx.lsb_volts
        with backend_scope(ctx.backend):
            if chunk_size is None:
                chunk_size = _stream_chunk_size(transitions.shape[1],
                                                ctx.n_samples)
            chips_per_chunk = max(1, chunk_size // converters_per_chip)

            chunks = []
            for chip_lo, chip_hi in iter_slices(n_chips, chips_per_chunk):
                noise = _chip_noise_rows(seeds[chip_lo:chip_hi],
                                         converters_per_chip, sigma,
                                         ctx.n_samples)
                lo = chip_lo * converters_per_chip
                hi = chip_hi * converters_per_chip
                chunks.append(self._process_streams(
                    transitions[lo:hi], ctx.ramp_voltages + noise,
                    ctx.partition.q))
            return self._build_result(chunks, transitions.shape[0], ctx)

    def run_population(self, population: Union[DevicePopulation, Wafer],
                       rng: RngLike = None,
                       dnl_spec_lsb: Optional[float] = None,
                       inl_spec_lsb: Optional[float] = None,
                       plan: Optional[ExecutionPlan] = None
                       ) -> PopulationBistResult:
        """Monte-Carlo partial-BIST run scored against the true linearity.

        The partial-BIST analogue of
        :meth:`repro.production.batch_engine.BatchBistEngine.run_population`:
        every device's accept/reject decision is compared with its true
        static linearity, yielding measured type I/II rates.
        """
        cfg = self.config
        if dnl_spec_lsb is None:
            dnl_spec_lsb = cfg.dnl_spec_lsb
        if inl_spec_lsb is None:
            inl_spec_lsb = cfg.inl_spec_lsb
        transitions, full_scale, sample_rate = \
            resolve_population_matrix(population)
        result = self.run_transitions(transitions, full_scale=full_scale,
                                      sample_rate=sample_rate, rng=rng,
                                      plan=plan)
        truly_good = population_truth_mask(transitions, dnl_spec_lsb,
                                           inl_spec_lsb)
        return PopulationBistResult(n_devices=result.n_devices,
                                    accepted=result.passed,
                                    truly_good=truly_good)

    def run_transitions(self, transitions: np.ndarray,
                        full_scale: float = 1.0,
                        sample_rate: float = 1e6,
                        rng: RngLike = None,
                        chunk_size: Optional[int] = None,
                        plan: Optional[ExecutionPlan] = None
                        ) -> BatchPartialBistResult:
        """Run the batched partial BIST on a ``(devices, transitions)`` matrix.

        Parameters
        ----------
        transitions:
            Transition-voltage matrix, one row per device under test.
        full_scale, sample_rate:
            Geometry/clock shared by the batch (one test insertion).
        rng:
            Seed or generator for the acquisition noise.  Without a plan
            it is consumed in device order exactly as a scalar loop over
            the devices consumes it; with a plan it must be a seed (or
            ``None``) and per-shard child seeds are spawned from it.
        chunk_size:
            Devices processed per chunk (bounds the transient
            ``(devices, samples)`` matrices).
        plan:
            Optional :class:`~repro.production.execution.ExecutionPlan`
            scaling the run out over worker processes; results are
            bit-identical for any ``(workers, chunk_size)`` of the plan.
        """
        cfg = self.config
        transitions = np.asarray(transitions, dtype=float)
        if plan is not None:
            return ShardExecutor(plan).run(
                self, transitions, full_scale, sample_rate,
                rng=resolve_plan_seed(rng, cfg.seed), chunk_size=chunk_size)
        generator = (rng if isinstance(rng, np.random.Generator)
                     else np.random.default_rng(
                         rng if rng is not None else cfg.seed))
        context = self.prepare(transitions, full_scale, sample_rate)
        return self.run_shard(context, transitions, generator, chunk_size)

    # ------------------------------------------------------------------ #
    # WaferEngine protocol
    # ------------------------------------------------------------------ #

    def prepare(self, transitions: np.ndarray, full_scale: float = 1.0,
                sample_rate: float = 1e6) -> _PartialShardContext:
        """Validate a batch and derive the shared per-run context."""
        cfg = self.config
        expected_cols = (1 << cfg.n_bits) - 1
        if transitions.ndim != 2 or transitions.shape[1] != expected_cols:
            raise ValueError(
                f"configuration is for {cfg.n_bits}-bit converters; expected "
                f"a (devices, {expected_cols}) transition matrix, got shape "
                f"{transitions.shape}")
        with current_telemetry().span("engine.partial.prepare",
                                      devices=int(transitions.shape[0])):
            proxy = IdealADC(cfg.n_bits, full_scale, sample_rate)
            ramp = RampStimulus.for_adc(proxy, cfg.samples_per_code,
                                        start_margin_lsb=cfg.start_margin_lsb)
            n_samples = ramp.n_samples_for_adc(
                proxy, margin_lsb=cfg.start_margin_lsb)
            times = np.arange(n_samples) / sample_rate
            return _PartialShardContext(
                ramp_voltages=ramp.voltage(times),
                n_samples=n_samples,
                lsb_volts=proxy.lsb,
                partition=self._scalar.partition_for(proxy),
                backend=resolve_backend_name(self._backend))

    def run_shard(self, context: _PartialShardContext,
                  transitions: np.ndarray, rng: RngLike = None,
                  chunk_size: Optional[int] = None
                  ) -> BatchPartialBistResult:
        """Run one contiguous device slice of a prepared batch."""
        transitions = np.asarray(transitions, dtype=float)
        generator = (rng if isinstance(rng, np.random.Generator)
                     else np.random.default_rng(rng))
        with backend_scope(context.backend):
            event_path = self.config.transition_noise_lsb == 0.0
            if chunk_size is None:
                chunk_size = (
                    _event_chunk_size(transitions.shape[1],
                                      context.n_samples) if event_path
                    else _stream_chunk_size(transitions.shape[1],
                                            context.n_samples))
            if chunk_size < 1:
                raise ValueError("chunk_size must be positive")

            n_devices = transitions.shape[0]
            t = current_telemetry()
            if t.enabled:
                t.count("engine.partial.shards")
                t.count("engine.partial.devices", n_devices)
                t.count("engine.partial.samples",
                        n_devices * context.n_samples)
                t.count("engine.partial.event_path_devices" if event_path
                        else "engine.partial.stream_path_devices",
                        n_devices)
                t.count(f"kernel.{context.backend}.shards")
                t.count(f"kernel.{context.backend}.devices", n_devices)
            with t.span("engine.partial.run_shard", devices=n_devices):
                chunks = [self._run_chunk(transitions[lo:hi], context,
                                          generator)
                          for lo, hi in iter_slices(n_devices, chunk_size)]
                return self._build_result(chunks, n_devices, context)

    def merge(self, shard_results: Sequence[BatchPartialBistResult]
              ) -> BatchPartialBistResult:
        """Combine per-shard results (in shard order) into one result."""
        with current_telemetry().span("engine.partial.merge",
                                      shards=len(shard_results)):
            return BatchPartialBistResult.merge(shard_results)

    def _build_result(self, chunks, n_devices: int,
                      context: _PartialShardContext
                      ) -> BatchPartialBistResult:
        """Assemble per-chunk decision tuples into one result object."""
        return BatchPartialBistResult(
            n_devices=n_devices,
            passed=np.concatenate([c[0] for c in chunks]),
            linearity_passed=np.concatenate([c[1] for c in chunks]),
            msb_passed=np.concatenate([c[2] for c in chunks]),
            reconstruction_error_rate=np.concatenate(
                [c[3] for c in chunks]),
            measured_max_dnl_lsb=np.concatenate([c[4] for c in chunks]),
            measured_max_inl_lsb=np.concatenate([c[5] for c in chunks]),
            partition=context.partition,
            samples_taken=context.n_samples)

    # ------------------------------------------------------------------ #
    # Chunk processing
    # ------------------------------------------------------------------ #

    def _run_chunk(self, transitions: np.ndarray,
                   context: _PartialShardContext,
                   generator: np.random.Generator):
        """Acquisition → on-chip check → reconstruction for one chunk."""
        cfg = self.config
        q = context.partition.q
        if cfg.transition_noise_lsb > 0.0:
            # Per-device noise, drawn in device order from the shard's
            # stream (row d of the draw equals the d-th scalar draw).
            voltages = context.ramp_voltages + generator.normal(
                0.0, cfg.transition_noise_lsb * context.lsb_volts,
                size=(transitions.shape[0], context.ramp_voltages.size))
            return self._process_streams(transitions, voltages, q)
        return self._run_chunk_events(transitions, context.ramp_voltages, q)

    def _run_chunk_events(self, transitions: np.ndarray,
                          ramp_voltages: np.ndarray, q: int):
        """Noise-free fast path working purely on transition crossings.

        With a shared monotone ramp the code of device ``d`` at sample
        ``t`` is the number of its transitions crossed at or before ``t``,
        so the acquisition collapses to per-device crossing events.  All
        per-sample quantities of the scalar flow are piecewise constant
        between events: the upper bits, the reference counter (clocked by
        falling edges of bit ``q``, which can only fall at an event), the
        reconstructed code, and therefore the histogram bin — each segment
        contributes its length to one bin.  The reconstruction's wrap
        counter sees the same falling edges as the reference counter, so
        a single cumulative sum drives both.
        """
        cfg = self.config
        n_chunk = transitions.shape[0]
        n_codes = 1 << cfg.n_bits
        n_samples = ramp_voltages.size
        mask = (1 << q) - 1

        crossing = shared_crossing_indices(transitions, ramp_voltages)
        start_code, mult_p, t_p, _, n_events = packed_crossing_events(
            crossing, n_samples)
        width = mult_p.shape[1]

        code_after = start_code[:, None] + np.cumsum(mult_p, axis=1)
        code_before = code_after - mult_p
        fall = (((code_before >> (q - 1)) & 1) == 1) \
            & (((code_after >> (q - 1)) & 1) == 0)
        reference = (start_code >> q)[:, None] + np.cumsum(fall, axis=1)
        upper = code_after >> q

        if cfg.check_msb and q < cfg.n_bits:
            # Padding columns repeat the final (code, reference) pair, so
            # they cannot introduce spurious mismatches.
            msb_ok = ~(upper != reference).any(axis=1) if width else \
                np.ones(n_chunk, dtype=bool)
        else:
            msb_ok = np.ones(n_chunk, dtype=bool)

        # Reconstructed code per segment; exact wherever the wrap counter
        # tracked the true upper bits.
        reconstructed = np.minimum((reference << q) + (code_after & mask),
                                   n_codes - 1)
        seg_len = np.diff(
            np.concatenate([t_p, np.full((n_chunk, 1), n_samples,
                                         dtype=np.int64)], axis=1), axis=1)
        err_count = ((reconstructed != code_after) * seg_len).sum(axis=1)
        errors = err_count / n_samples

        # Histogram: every segment drops its length into its bin; the
        # initial segment (before the first event) holds the start code.
        initial_len = np.where(n_events > 0,
                               t_p[:, 0] if width else n_samples,
                               n_samples)
        dev_idx = np.arange(n_chunk)
        flat_keys = np.concatenate([
            (dev_idx[:, None] * n_codes
             + np.clip(reconstructed, 0, n_codes - 1)).ravel(),
            dev_idx * n_codes + np.clip(start_code, 0, n_codes - 1)])
        flat_weights = np.concatenate([seg_len.ravel(),
                                       initial_len]).astype(float)
        counts = np.bincount(flat_keys, weights=flat_weights,
                             minlength=n_chunk * n_codes)
        counts = counts.reshape(n_chunk, n_codes)
        return self._decide(counts, msb_ok, errors)

    def _process_streams(self, transitions: np.ndarray,
                         voltages: np.ndarray, q: int):
        """Quantise per-device voltage rows and run the partial flow.

        The noise-provenance-agnostic half of the stream path: callers
        decide how the per-device voltages were produced (shard stream in
        device order, or per-converter child generators in chip mode).
        """
        cfg = self.config
        n_chunk = transitions.shape[0]
        n_codes = 1 << cfg.n_bits

        codes = batch_quantise_rows(transitions, voltages)

        # --- on-chip: bits q+1 .. n against the reference counter ------- #
        if cfg.check_msb and q < cfg.n_bits:
            upper, reference, _ = batch_msb_reference(codes, q)
            msb_ok = ~(upper != reference).any(axis=1)
        else:
            msb_ok = np.ones(n_chunk, dtype=bool)

        # --- off-chip: reconstruct codes from the observed q LSBs ------- #
        mask = (1 << q) - 1
        observed = codes & mask
        initial_upper = codes[:, 0] >> q
        reconstructed = batch_reconstruct_codes(observed, q, cfg.n_bits,
                                                initial_upper=initial_upper)
        errors = np.mean(reconstructed != codes, axis=1)

        counts = batch_code_histogram(
            np.clip(reconstructed, 0, n_codes - 1), n_codes).astype(float)
        return self._decide(counts, msb_ok, errors)

    def _decide(self, counts: np.ndarray, msb_ok: np.ndarray,
                errors: np.ndarray):
        """Histogram → DNL/INL → pass/fail, shared by both paths.

        The end-point computation over the inner bins is the shared
        device-axis kernel :func:`repro.core.kernel.batch_histogram_linearity`
        — exactly the scalar
        :func:`repro.analysis.linearity.dnl_from_histogram` with a device
        axis (same reductions in the same order, so the decisions stay
        bit-exact).
        """
        cfg = self.config
        dnl, inl, measurable = batch_histogram_linearity(counts)
        max_dnl = np.abs(dnl).max(axis=1)
        max_inl = np.abs(inl).max(axis=1)

        linearity_ok = measurable & (max_dnl <= cfg.dnl_spec_lsb)
        if cfg.inl_spec_lsb is not None:
            linearity_ok &= max_inl <= cfg.inl_spec_lsb
        max_dnl = np.where(measurable, max_dnl, np.nan)
        max_inl = np.where(measurable, max_inl, np.nan)

        return (linearity_ok & msb_ok, linearity_ok, msb_ok, errors,
                max_dnl, max_inl)
