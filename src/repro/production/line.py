"""Screening-line orchestration: stations, yield and throughput accounting.

A :class:`ScreeningLine` chains the stations a lot passes through on the
test floor:

1. **Screening station** — every die runs the batched test selected by
   ``method``.  ``method="bist"`` (default) runs the batched BIST: in
   full-BIST mode (:class:`~repro.production.batch_engine.BatchBistEngine`)
   only a pass/fail flag leaves the chip; with ``partial_q`` set the
   station runs the batched partial BIST
   (:class:`~repro.production.partial_batch.BatchPartialBistEngine`),
   capturing ``q`` LSBs per sample off-chip as Equation (1) demands for
   faster stimuli.  ``method="histogram"`` screens with the *conventional*
   ramp histogram test
   (:class:`~repro.production.analysis_batch.BatchHistogramTest`) and
   ``method="dynamic"`` with the single-tone FFT suite
   (:class:`~repro.production.analysis_batch.BatchDynamicSuite`) — both
   capture full output words on a mixed-signal tester, which is exactly
   the data-volume/tester-cost contrast the paper's comparison is about.
2. **Retest station** (optional) — rejected dies are re-inserted up to
   ``retest_attempts`` times.  With acquisition noise configured a
   borderline die can be recovered on a second ramp; in the noise-free
   nominal configuration the BIST is deterministic and retest recovers
   nothing (which the report makes visible).
3. **Binning station** — accepted dies are graded by the linearity the
   test actually measured (counter readings for the full BIST, the
   off-chip histogram for the partial BIST).

With ``devices_per_ic > 1`` the line screens multi-converter ICs: chips
are assembled from consecutive dies, every converter of a chip shares one
stimulus ramp, and the report carries chip-level yield alongside the
per-converter numbers (the paper's parallel-test argument).

Tester-floor economics ride along: every insertion is costed with
:func:`repro.economics.cost_model.cost_per_device` and scheduled with
:class:`repro.economics.parallel.ParallelTestSchedule`, so the report shows
devices/hour and cost per device for the configured tester — the paper's
economic argument, evaluated per lot under any (architecture, q) scenario.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.analysis.dynamic import DynamicAnalyzer, DynamicSpec
from repro.core.engine import BistConfig, PopulationBistResult
from repro.economics.cost_model import TesterModel, TestPlan, cost_per_device
from repro.economics.parallel import ParallelTestSchedule
from repro.production.analysis_batch import (
    BatchDynamicSuite,
    BatchHistogramTest,
)
from repro.production.batch_engine import BatchBistEngine, chip_grouping
from repro.production.execution import (
    ExcursionAbort,
    ExecutionPlan,
    spc_scope,
)
from repro.production.lot import Lot, Wafer
from repro.production.partial_batch import BatchPartialBistEngine
from repro.telemetry.core import current_telemetry
from repro.telemetry.log import get_logger

__all__ = ["StationStats", "LotScreeningReport", "ScreeningLine",
           "DEFAULT_BIN_EDGES_LSB", "SCREENING_METHODS"]

_log = get_logger("line")

RngLike = Union[int, np.random.Generator, None]

#: Default measured-|DNL| bin edges in LSB: premium / standard / marginal.
DEFAULT_BIN_EDGES_LSB = (0.25, 0.5)

#: Screening methods a line can mount as its first station.
SCREENING_METHODS = ("bist", "histogram", "dynamic")


@dataclass
class StationStats:
    """Yield and throughput bookkeeping of one station for one lot."""

    name: str
    n_in: int
    n_accepted: int
    tester_seconds: float
    #: Devices whose insertion time is actually included in
    #: ``tester_seconds``.  ``None`` (every fixed station) means all of
    #: ``n_in`` — the historical uniform-insertion assumption.  Adaptive
    #: stations set it explicitly: a sequential station's aborted-wafer
    #: tail enters the queue (``n_in``) but is never inserted, so costing
    #: throughput on ``n_in`` would overstate it.
    n_accounted: Optional[int] = None

    @property
    def accounted(self) -> int:
        """Devices that actually consumed the station's tester time."""
        return self.n_in if self.n_accounted is None else self.n_accounted

    @property
    def n_rejected(self) -> int:
        """Devices the station rejected."""
        return self.n_in - self.n_accepted

    @property
    def yield_fraction(self) -> float:
        """Fraction of entering devices the station accepted."""
        return self.n_accepted / self.n_in if self.n_in else 1.0

    @property
    def devices_per_hour(self) -> float:
        """Station throughput in devices per tester-hour.

        Uses the *accounted* devices (those whose insertions are in
        ``tester_seconds``), so adaptive stations with variable
        per-device time report the throughput of the work actually done.
        """
        if self.tester_seconds <= 0.0:
            return float("inf")
        return self.accounted / self.tester_seconds * 3600.0


@dataclass
class LotScreeningReport:
    """Everything the line learned about one lot.

    The truth-referenced error rates (type I/II) are available because the
    simulated wafers expose their true transfer curves; a real tester floor
    would only see the accept counts and bins.
    """

    lot_id: str
    n_devices: int
    n_accepted: int
    n_recovered: int
    bin_counts: Dict[str, int]
    stations: List[StationStats]
    tester_seconds: float
    cost_per_device: float
    p_good: float
    type_i: float
    type_ii: float
    samples_per_device: int
    wall_seconds: float = field(default=0.0)
    #: Screening method of the first station ("bist", "histogram",
    #: "dynamic").
    method: str = field(default="bist")
    #: Test scenario the lot was screened under.
    mode: str = field(default="full")
    q: int = field(default=1)
    architecture: str = field(default="flash")
    #: Chip-level outcome when the line screens multi-converter ICs
    #: (``None`` when devices_per_ic is 1).
    n_chips: Optional[int] = field(default=None)
    n_chips_passed: Optional[int] = field(default=None)
    #: Test flow of the first station (``"fixed"`` or ``"sprt"``).
    flow: str = field(default="fixed")
    #: Code observations the sequential flow avoided versus the fixed
    #: full-record schedule (0 for the fixed flow).
    saved_samples: int = field(default=0)
    #: Tester-seconds the sequential flow saved versus the fixed
    #: schedule of the same insertions (0.0 for the fixed flow).
    saved_tester_seconds: float = field(default=0.0)
    #: Devices never inserted because the SPC monitor aborted their
    #: wafer mid-stream (they count as rejected, at zero tester time).
    n_aborted: int = field(default=0)
    #: Wafers aborted by an SPC excursion signal.
    excursions: int = field(default=0)

    @property
    def scenario(self) -> str:
        """Human-readable (architecture, method/mode) tag of the run."""
        if self.method != "bist":
            return f"{self.architecture}/{self.method}"
        if self.mode == "partial":
            return f"{self.architecture}/partial q={self.q}"
        return f"{self.architecture}/full"

    @property
    def chip_yield(self) -> Optional[float]:
        """Fraction of whole ICs passing (``None`` without chip grouping)."""
        if self.n_chips is None or self.n_chips == 0:
            return None
        return self.n_chips_passed / self.n_chips

    @property
    def n_rejected(self) -> int:
        """Dies finally rejected."""
        return self.n_devices - self.n_accepted

    @property
    def accept_fraction(self) -> float:
        """Final accept fraction of the lot."""
        return self.n_accepted / self.n_devices if self.n_devices else 0.0

    @property
    def devices_per_hour(self) -> float:
        """Lot throughput in devices per tester-hour."""
        if self.tester_seconds <= 0.0:
            return float("inf")
        return self.n_devices / self.tester_seconds * 3600.0

    @property
    def simulated_devices_per_second(self) -> float:
        """Simulation (wall-clock) throughput of the batched engine."""
        if self.wall_seconds <= 0.0:
            return float("inf")
        return self.n_devices / self.wall_seconds


class ScreeningLine:
    """A production screening line built around the batched test engines.

    Parameters
    ----------
    config:
        Measurement configuration every station uses (resolution,
        specification, acquisition noise; the counter/deglitch fields only
        apply to the BIST method).
    retest_attempts:
        How many times a rejected die is re-inserted (0 disables retest).
    bin_edges_lsb:
        Ascending thresholds separating the speed/quality bins of accepted
        dies; ``n`` edges produce ``n + 1`` bins named ``bin-1`` (tightest)
        to ``bin-n+1``.  The binning metric is the measured |DNL| in LSB
        for the BIST and histogram methods and the effective-bit shortfall
        ``n_bits - ENOB`` for the dynamic method.
    tester:
        Tester model executing the insertions; defaults to the low-cost
        digital tester for the full BIST and to a mixed-signal tester for
        every method that needs analog instruments (partial BIST,
        histogram, dynamic).
    devices_per_ic:
        Converters sharing one IC (and thus one insertion); with more than
        one the report carries chip-level yield.
    partial_q:
        ``None`` (default) screens with the full BIST; an integer ``q``
        switches the BIST station to the batched partial scheme with ``q``
        LSBs captured off-chip.  The partial flow has no on-chip LSB
        processing block, so ``config.counter_bits`` does not apply (the
        off-chip histogram is full precision), and a configured deglitch
        filter is rejected as unsupported rather than silently dropped.
        Only valid with ``method="bist"``.
    samples_per_code:
        Ramp density of the partial-BIST and histogram stimuli (ignored in
        full-BIST mode, where the step size follows from the counter
        width, and in dynamic mode, which uses a sine record).
    method:
        Screening method of the first station: ``"bist"`` (default),
        ``"histogram"`` (the conventional ramp code-density test) or
        ``"dynamic"`` (the single-tone FFT suite).
    dynamic_analyzer, dynamic_spec:
        FFT configuration and pass/fail limits of the dynamic method;
        defaults to a 4096-sample Hann analyzer with an ENOB floor one bit
        below the nominal resolution.
    backend:
        Kernel backend name (see :mod:`repro.core.backend`) the line's
        engine runs on; ``None`` resolves the ambient/default backend.
    flow:
        ``"fixed"`` (default) runs the paper's fixed-count decision;
        ``"sprt"`` mounts the adaptive sequential flow of
        :mod:`repro.flows` — a Wald-SPRT station deciding each device on
        its incremental code stream (reporting saved tester-seconds
        through the tester economics), plus a wafer-level SPC monitor
        (p-chart + CUSUM over streaming shard results, plan-based runs)
        that aborts an excursed wafer's remaining shards.  Full BIST
        only.
    sprt_alpha, sprt_beta:
        Wald design risks of the sequential flow: target probability of
        rejecting a good device (``alpha``) and of accepting a faulty
        one (``beta``).
    """

    def __init__(self, config: BistConfig,
                 retest_attempts: int = 0,
                 bin_edges_lsb: Sequence[float] = DEFAULT_BIN_EDGES_LSB,
                 tester: Optional[TesterModel] = None,
                 devices_per_ic: int = 1,
                 partial_q: Optional[int] = None,
                 samples_per_code: float = 16.0,
                 method: str = "bist",
                 dynamic_analyzer: Optional[DynamicAnalyzer] = None,
                 dynamic_spec: Optional[DynamicSpec] = None,
                 backend: Optional[str] = None,
                 flow: str = "fixed",
                 sprt_alpha: Optional[float] = None,
                 sprt_beta: Optional[float] = None) -> None:
        # Imported here, not at module scope: the campaign package imports
        # this module (Campaign drives ScreeningLine), so the factory hop
        # must not create an import cycle.
        from repro.campaign.factory import default_tester, make_engine
        from repro.campaign.scenario import AUTO_Q, Scenario

        if retest_attempts < 0:
            raise ValueError("retest_attempts must be non-negative")
        if devices_per_ic < 1:
            raise ValueError("devices_per_ic must be positive")
        if partial_q == AUTO_Q:
            raise ValueError(
                "a screening line needs a concrete partial_q for its "
                "tester economics; q='auto' scenarios resolve q per "
                "stimulus and only drive engine-level runs (make_engine)")
        # The scenario describes (and validates) the measurement side of
        # this line: method, q, noise, deglitch compatibility.  Geometry
        # fields stay at their defaults — a line screens whatever lot it
        # is handed.
        scenario = Scenario(
            method=method,
            q=partial_q,
            n_bits=config.n_bits,
            samples_per_code=samples_per_code,
            counter_bits=config.counter_bits,
            dnl_spec_lsb=config.dnl_spec_lsb,
            inl_spec_lsb=config.inl_spec_lsb,
            transition_noise_lsb=config.transition_noise_lsb,
            deglitch_depth=config.deglitch_depth,
            retest_attempts=retest_attempts,
            bin_edges_lsb=tuple(float(e) for e in bin_edges_lsb),
            backend=backend,
            flow=flow)
        self.config = config
        self.flow = flow
        self.sprt_alpha = sprt_alpha
        self.sprt_beta = sprt_beta
        self.scenario = scenario
        self.method = method
        self.partial_q = partial_q
        # The factory is the only place engines are constructed; the full
        # caller-provided config (stimulus imperfections, counter policy,
        # seed) rides through unchanged.
        self.engine: Union[BatchBistEngine, BatchPartialBistEngine,
                           BatchHistogramTest, BatchDynamicSuite]
        self.engine = make_engine(scenario, config=config,
                                  dynamic_analyzer=dynamic_analyzer,
                                  dynamic_spec=dynamic_spec)
        self.retest_attempts = int(retest_attempts)
        self.bin_edges_lsb = list(scenario.bin_edges_lsb)
        self.tester = (tester if tester is not None
                       else default_tester(scenario))
        self.devices_per_ic = int(devices_per_ic)

    @classmethod
    def from_scenario(cls, scenario,
                      tester: Optional[TesterModel] = None,
                      dynamic_analyzer: Optional[DynamicAnalyzer] = None,
                      dynamic_spec: Optional[DynamicSpec] = None
                      ) -> "ScreeningLine":
        """Build the fully configured line a scenario describes.

        The declarative entry point: measurement config, method, ``q``,
        retest policy, bins, tester and chip grouping all come from the
        :class:`~repro.campaign.scenario.Scenario`; an explicit ``tester``
        argument overrides the scenario's choice.
        """
        line = cls(scenario.bist_config(),
                   retest_attempts=scenario.retest_attempts,
                   bin_edges_lsb=scenario.bin_edges_lsb,
                   tester=(tester if tester is not None
                           else scenario.tester_model()),
                   devices_per_ic=scenario.devices_per_ic,
                   partial_q=scenario.q,
                   samples_per_code=scenario.samples_per_code,
                   method=scenario.method,
                   dynamic_analyzer=dynamic_analyzer,
                   dynamic_spec=dynamic_spec,
                   backend=scenario.backend,
                   flow=scenario.flow)
        # Keep the caller's full scenario (geometry, seed, label included)
        # rather than the line's measurement-only reconstruction.
        line.scenario = scenario
        return line

    @property
    def mode(self) -> str:
        """Station flavour: BIST ``"full"``/``"partial"``, or the method."""
        if self.method != "bist":
            return self.method
        return "full" if self.partial_q is None else "partial"

    @property
    def q(self) -> int:
        """Number of LSBs the tester captures per sample.

        1 for the full BIST (the pass/fail flag channel), ``partial_q``
        for the partial scheme, and the full word width for the
        conventional histogram and dynamic methods.
        """
        if self.method != "bist":
            return int(self.config.n_bits)
        return 1 if self.partial_q is None else int(self.partial_q)

    def describe(self) -> str:
        """One-line description of the screening station's configuration."""
        if self.method == "histogram":
            return (f"conventional histogram test, "
                    f"{self.engine.samples_per_code:g} samples/code, "
                    f"DNL spec ±{self.config.dnl_spec_lsb} LSB")
        if self.method == "dynamic":
            spec = self.engine.resolved_spec(self.config.n_bits)
            limits = []
            if spec.min_enob is not None:
                limits.append(f"ENOB >= {spec.min_enob:g}")
            if spec.min_sinad_db is not None:
                limits.append(f"SINAD >= {spec.min_sinad_db:g} dB")
            if spec.min_snr_db is not None:
                limits.append(f"SNR >= {spec.min_snr_db:g} dB")
            if spec.max_thd_db is not None:
                limits.append(f"THD <= {spec.max_thd_db:g} dB")
            if spec.min_sfdr_db is not None:
                limits.append(f"SFDR >= {spec.min_sfdr_db:g} dB")
            return (f"dynamic FFT suite, "
                    f"{self.engine.analyzer.n_samples}-sample "
                    f"{self.engine.analyzer.window} window, "
                    + ", ".join(limits))
        if self.partial_q is None:
            return f"full BIST, {self.engine.limits.describe()}"
        return (f"partial BIST, q={self.q} LSBs off-chip, "
                f"DNL spec ±{self.config.dnl_spec_lsb} LSB")

    # ------------------------------------------------------------------ #
    # Station helpers
    # ------------------------------------------------------------------ #

    def bin_names(self) -> List[str]:
        """Names of the quality bins, tightest first."""
        return [f"bin-{i + 1}" for i in range(len(self.bin_edges_lsb) + 1)]

    def _insertion_seconds(self, n_devices: int, samples: int,
                           sample_rate: float) -> float:
        """Tester time to push ``n_devices`` through one insertion."""
        if n_devices == 0:
            return 0.0
        # A full-BIST insertion occupies one channel per device (the
        # pass/fail flag); the partial scheme keeps q LSBs observable and
        # the conventional methods capture the full output word.
        schedule = ParallelTestSchedule(
            n_converters=n_devices,
            bits_per_converter=self.q,
            tester_channels=self.tester.digital_channels,
            time_per_pass_s=samples / sample_rate)
        return schedule.total_time_s

    def _bin_metric(self, result) -> np.ndarray:
        """Quality-grading metric of a screening result, one per device.

        Measured |DNL| in LSB for the BIST and histogram methods, the
        effective-bit shortfall for the dynamic suite (which measures no
        DNL at all).
        """
        if self.method == "dynamic":
            return result.enob_shortfall_lsb
        return result.measured_max_dnl_lsb

    def _sequential_policy(self):
        """The SPRT policy and per-code model of this line's scenario.

        Derived from the paper's closed-form error model for the line's
        process sigma, DNL spec and counter width; the same per-code
        conditionals feed the SPC monitor's analytic p-chart centre.
        """
        from repro.campaign.factory import sequential_policy

        return sequential_policy(self.scenario, config=self.config,
                                 alpha=self.sprt_alpha,
                                 beta=self.sprt_beta)

    def test_plan(self, n_bits: int, samples: int,
                   sample_rate: float) -> TestPlan:
        """The per-device test plan pricing this line's insertions."""
        samples = max(samples, 1)
        if self.method == "histogram":
            return TestPlan.conventional_histogram(
                n_bits=n_bits, samples=samples, sample_rate=sample_rate)
        if self.method == "dynamic":
            return TestPlan.dynamic_fft(
                n_bits=n_bits, samples=samples, sample_rate=sample_rate)
        if self.partial_q is None:
            return TestPlan.full_bist(n_bits=n_bits, samples=samples,
                                      sample_rate=sample_rate)
        return TestPlan.partial_bist(n_bits=n_bits, q=self.q,
                                     samples=samples,
                                     sample_rate=sample_rate)

    # ------------------------------------------------------------------ #
    # Lot processing
    # ------------------------------------------------------------------ #

    def screen_lot(self, lot: Union[Lot, Wafer], rng: RngLike = None,
                   store=None,
                   plan: Optional[ExecutionPlan] = None
                   ) -> LotScreeningReport:
        """Run a lot (or a single wafer) through the whole line.

        Parameters
        ----------
        lot:
            The lot to screen; a bare wafer is treated as a one-wafer lot.
        rng:
            Seed or generator for the acquisition noise of all stations.
            With a plan it must be a seed (or ``None``): every insertion
            of every wafer derives its own child seed from it, so the
            report is byte-identical for any ``(workers, chunk_size)``.
        store:
            Optional :class:`~repro.production.store.ResultStore` the
            report is appended to.
        plan:
            Optional :class:`~repro.production.execution.ExecutionPlan`
            every station's engine runs under, sharding the device axis
            over worker processes.
        """
        if isinstance(lot, Wafer):
            lot = Lot([lot], lot_id=lot.wafer_id)
        spec = lot.spec
        if plan is not None:
            if isinstance(rng, np.random.Generator):
                raise ValueError(
                    "plan-based screening takes an integer seed (or None) "
                    "so per-wafer, per-insertion child seeds are "
                    "deterministic across workers")
            # One child sequence per wafer, one grandchild per insertion
            # (first pass + each retest): a pure function of (seed, wafer
            # index, insertion index), independent of the plan geometry.
            insertion_seeds = [
                wafer_seq.spawn(1 + self.retest_attempts)
                for wafer_seq in np.random.SeedSequence(rng).spawn(len(lot))]
            generator = None
        else:
            insertion_seeds = None
            generator = (rng if isinstance(rng, np.random.Generator)
                         else np.random.default_rng(rng))

        t = current_telemetry()
        t0 = time.perf_counter()
        accepted_masks: List[np.ndarray] = []
        measured: List[np.ndarray] = []
        truly_good: List[np.ndarray] = []
        first_pass_in = 0
        first_pass_ok = 0
        retest_in = 0
        retest_ok = 0
        samples_per_device = 0
        n_chips = 0
        n_chips_passed = 0
        chips_whole = self.devices_per_ic > 1
        # Adaptive (sequential) flow bookkeeping.
        sprt = self.flow == "sprt"
        policy = per_code = None
        if sprt:
            policy, per_code = self._sequential_policy()
        accounted_in = 0
        total_stop_codes = 0
        total_codes = 0
        stopped_early = 0
        stop_quartiles = np.zeros(4, dtype=np.int64)
        n_aborted = 0
        excursions_detected = 0
        excursions_missed = 0
        if chips_whole:
            # Chips never straddle wafers; pricing insertions per IC while
            # silently skipping chip yield would misreport the economics,
            # so a non-dividing wafer is an error (as in chip_grouping).
            for wafer in lot:
                if len(wafer) % self.devices_per_ic != 0:
                    raise ValueError(
                        f"wafer {wafer.wafer_id} has {len(wafer)} dies, "
                        f"which do not fill whole ICs of "
                        f"{self.devices_per_ic} converters")

        with t.span("line.screen_lot", lot=lot.lot_id, method=self.method,
                    wafers=len(lot)):
            for w_index, wafer in enumerate(lot):
                n_wafer = len(wafer)
                monitor = None
                if sprt and plan is not None:
                    # Wafer-level SPC rides on the shard stream, so it
                    # needs a plan-based run; the monitor observes shard
                    # results in absolute shard order (plan-geometry
                    # independent) and aborts the wafer on an excursion.
                    from repro.flows.spc import monitor_for_model
                    monitor = monitor_for_model(
                        per_code, spec.n_inner_codes, plan.shard_devices,
                        wafer_id=wafer.wafer_id)
                wafer_aborted = False
                devices_done = n_wafer
                try:
                    with spc_scope(monitor):
                        result = self.engine.run_wafer(
                            wafer,
                            rng=(generator if insertion_seeds is None
                                 else insertion_seeds[w_index][0]),
                            plan=plan)
                except ExcursionAbort as exc:
                    wafer_aborted = True
                    excursions_detected += 1
                    result = exc.partial
                    devices_done = int(exc.devices_done)
                    n_aborted += n_wafer - devices_done
                    _log.info(
                        "wafer %s aborted at shard %d (%s %.4g > %.4g): "
                        "%d of %d devices dispositioned, tail rejected",
                        wafer.wafer_id, exc.shard, exc.statistic,
                        exc.value, exc.threshold, devices_done, n_wafer)
                if (monitor is not None and not wafer_aborted
                        and self.scenario.excursion is not None):
                    excursions_missed += 1

                # Disposition: the tested prefix takes its measured
                # verdict (all devices for a clean wafer); an aborted
                # wafer's untested tail is rejected at zero tester time.
                accepted = np.zeros(n_wafer, dtype=bool)
                measured_dnl = np.full(n_wafer, np.inf)
                if result is not None:
                    samples_per_device = result.samples_taken
                    accepted[:devices_done] = result.passed
                    measured_dnl[:devices_done] = np.asarray(
                        self._bin_metric(result), dtype=float)

                if sprt and result is not None and devices_done > 0:
                    # Sequential station: re-derive the per-code accept
                    # stream the full BIST observed and stop each device
                    # at its Wald boundary; undecided devices keep the
                    # fixed verdict (flow degenerates bit-exactly).
                    from repro.flows.sequential import (
                        code_pass_matrix,
                        sprt_decide,
                    )
                    context = self.engine.prepare(
                        wafer.transitions[:devices_done],
                        spec.full_scale, spec.sample_rate)
                    code_ok = code_pass_matrix(
                        wafer.transitions[:devices_done],
                        context.ramp_voltages, self.engine.limits,
                        saturate=self.config.counter_saturate)
                    decision = sprt_decide(code_ok, policy,
                                           fixed_decision=result.passed)
                    accepted[:devices_done] = decision.accepted
                    total_stop_codes += decision.observed_codes
                    total_codes += decision.total_codes
                    stopped_early += decision.n_stopped_early
                    stop_quartiles += decision.stop_quartiles()

                first_pass_in += n_wafer
                accounted_in += devices_done
                first_pass_ok += int(
                    np.count_nonzero(accepted[:devices_done]))

                for attempt in range(self.retest_attempts):
                    if wafer_aborted:
                        # An excursed wafer is dispositioned, not
                        # retested: its untested tail has no measurement
                        # to recover from.
                        break
                    rejected = np.nonzero(~accepted)[0]
                    if rejected.size == 0:
                        break
                    retest_in += int(rejected.size)
                    retest = self.engine.run_transitions(
                        wafer.transitions[rejected],
                        full_scale=spec.full_scale,
                        sample_rate=spec.sample_rate,
                        rng=(generator if insertion_seeds is None
                             else insertion_seeds[w_index][1 + attempt]),
                        plan=plan)
                    recovered = rejected[retest.passed]
                    retest_ok += int(recovered.size)
                    accepted[recovered] = True
                    measured_dnl[recovered] = \
                        self._bin_metric(retest)[retest.passed]

                accepted_masks.append(accepted)
                measured.append(measured_dnl)
                truly_good.append(wafer.good_mask(self.config.dnl_spec_lsb,
                                                  self.config.inl_spec_lsb))
                if chips_whole:
                    # Chips are assembled from consecutive dies of one
                    # wafer; an IC ships only when every converter on it
                    # passed.
                    chip_passed, _ = chip_grouping(accepted,
                                                   self.devices_per_ic)
                    n_chips += int(chip_passed.size)
                    n_chips_passed += int(np.count_nonzero(chip_passed))
        wall_seconds = time.perf_counter() - t0

        accepted_all = np.concatenate(accepted_masks)
        measured_all = np.concatenate(measured)
        good_all = np.concatenate(truly_good)
        n_devices = accepted_all.size
        n_accepted = int(np.count_nonzero(accepted_all))
        # Score the final decisions against the truth with the shared
        # Monte-Carlo result type, so the line reports the same joint
        # (Table 1) error-rate convention as every other population run.
        outcome = PopulationBistResult(n_devices=n_devices,
                                       accepted=accepted_all,
                                       truly_good=good_all)

        # Binning station: grade accepted dies on the measured linearity.
        bins = np.digitize(measured_all[accepted_all], self.bin_edges_lsb)
        names = self.bin_names()
        bin_counts = {name: int(np.count_nonzero(bins == i))
                      for i, name in enumerate(names)}

        # Tester-floor economics.  Only devices that actually reached the
        # tester (the accounted prefix of each wafer) consume insertion
        # time; under the sequential flow the first station then scales
        # that fixed-count time by the fraction of per-code observations
        # the SPRT actually took before stopping.
        fixed_seconds = self._insertion_seconds(
            accounted_in, samples_per_device, spec.sample_rate)
        if sprt and total_codes:
            adaptive_seconds = fixed_seconds * (total_stop_codes
                                                / total_codes)
        else:
            adaptive_seconds = fixed_seconds
        saved_seconds = fixed_seconds - adaptive_seconds
        bist_seconds = adaptive_seconds if sprt else fixed_seconds
        retest_seconds = self._insertion_seconds(
            retest_in, samples_per_device, spec.sample_rate)
        if sprt:
            first_station = StationStats(
                "sequential", first_pass_in, first_pass_ok,
                adaptive_seconds, n_accounted=accounted_in)
        else:
            first_station = StationStats(self.method, first_pass_in,
                                         first_pass_ok, bist_seconds)
        stations = [first_station]
        if self.retest_attempts > 0:
            stations.append(StationStats("retest", retest_in, retest_ok,
                                         retest_seconds))
        stations.append(StationStats("binning", n_accepted, n_accepted, 0.0))

        cost_plan = self.test_plan(spec.n_bits, samples_per_device,
                                   spec.sample_rate)
        cost = cost_per_device(cost_plan, self.tester,
                               devices_per_ic=self.devices_per_ic)

        if t.enabled:
            # Pass/fail/escape tallies per station, tied to the tester
            # economics.  All values derive from screening decisions, so
            # the counter block is invariant under the execution plan.
            t.count("line.lots")
            t.count("line.devices", n_devices)
            t.count("line.accepted", n_accepted)
            t.count("line.escapes",
                    int(np.count_nonzero(accepted_all & ~good_all)))
            t.count("line.yield_loss",
                    int(np.count_nonzero(~accepted_all & good_all)))
            for station in stations:
                t.count(f"line.station.{station.name}.in", station.n_in)
                t.count(f"line.station.{station.name}.accepted",
                        station.n_accepted)
                t.count(f"line.station.{station.name}.rejected",
                        station.n_in - station.n_accepted)
            t.record_timer("line.tester_seconds",
                           bist_seconds + retest_seconds)
            if sprt:
                # Adaptive-flow economics; see repro.telemetry.metrics
                # for the flow.* key glossary.
                t.count("flow.saved_samples",
                        total_codes - total_stop_codes)
                t.count("flow.devices_stopped_early", stopped_early)
                t.count("flow.excursions_detected", excursions_detected)
                t.count("flow.excursions_missed", excursions_missed)
                t.count("flow.aborted_devices", n_aborted)
                for i in range(4):
                    t.count(f"flow.stop_quartile.q{i + 1}",
                            int(stop_quartiles[i]))
        _log.info("lot %s [%s]: %d/%d accepted, %.3f tester-s, "
                  "%.3f s wall", lot.lot_id, self.method, n_accepted,
                  n_devices, bist_seconds + retest_seconds, wall_seconds)

        report = LotScreeningReport(
            lot_id=lot.lot_id,
            n_devices=n_devices,
            n_accepted=n_accepted,
            n_recovered=retest_ok,
            bin_counts=bin_counts,
            stations=stations,
            tester_seconds=bist_seconds + retest_seconds,
            cost_per_device=cost,
            p_good=outcome.p_good,
            type_i=outcome.type_i,
            type_ii=outcome.type_ii,
            samples_per_device=samples_per_device,
            wall_seconds=wall_seconds,
            method=self.method,
            mode=self.mode,
            q=self.q,
            architecture=spec.architecture,
            n_chips=n_chips if chips_whole else None,
            n_chips_passed=n_chips_passed if chips_whole else None,
            flow=self.flow,
            saved_samples=(total_codes - total_stop_codes) if sprt else 0,
            saved_tester_seconds=saved_seconds if sprt else 0.0,
            n_aborted=n_aborted,
            excursions=excursions_detected)
        if store is not None:
            store.add(report)
        return report
