"""Screening-line orchestration: stations, yield and throughput accounting.

A :class:`ScreeningLine` chains the stations a lot passes through on the
test floor:

1. **BIST station** — every die runs the batched full BIST
   (:class:`~repro.production.batch_engine.BatchBistEngine`); only a
   pass/fail flag leaves the chip.
2. **Retest station** (optional) — rejected dies are re-inserted up to
   ``retest_attempts`` times.  With acquisition noise configured a
   borderline die can be recovered on a second ramp; in the noise-free
   nominal configuration the BIST is deterministic and retest recovers
   nothing (which the report makes visible).
3. **Binning station** — accepted dies are graded by the linearity the
   counters actually measured (``reading x ds``), the only number the
   full BIST can bin on without off-chip data.

Tester-floor economics ride along: every insertion is costed with
:func:`repro.economics.cost_model.cost_per_device` and scheduled with
:class:`repro.economics.parallel.ParallelTestSchedule`, so the report shows
devices/hour and cost per device for the configured tester — the paper's
economic argument, evaluated per lot.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.core.engine import BistConfig, PopulationBistResult
from repro.economics.cost_model import TesterModel, TestPlan, cost_per_device
from repro.economics.parallel import ParallelTestSchedule
from repro.production.batch_engine import BatchBistEngine
from repro.production.lot import Lot, Wafer

__all__ = ["StationStats", "LotScreeningReport", "ScreeningLine",
           "DEFAULT_BIN_EDGES_LSB"]

RngLike = Union[int, np.random.Generator, None]

#: Default measured-|DNL| bin edges in LSB: premium / standard / marginal.
DEFAULT_BIN_EDGES_LSB = (0.25, 0.5)


@dataclass
class StationStats:
    """Yield and throughput bookkeeping of one station for one lot."""

    name: str
    n_in: int
    n_accepted: int
    tester_seconds: float

    @property
    def n_rejected(self) -> int:
        """Devices the station rejected."""
        return self.n_in - self.n_accepted

    @property
    def yield_fraction(self) -> float:
        """Fraction of entering devices the station accepted."""
        return self.n_accepted / self.n_in if self.n_in else 1.0

    @property
    def devices_per_hour(self) -> float:
        """Station throughput in devices per tester-hour."""
        if self.tester_seconds <= 0.0:
            return float("inf")
        return self.n_in / self.tester_seconds * 3600.0


@dataclass
class LotScreeningReport:
    """Everything the line learned about one lot.

    The truth-referenced error rates (type I/II) are available because the
    simulated wafers expose their true transfer curves; a real tester floor
    would only see the accept counts and bins.
    """

    lot_id: str
    n_devices: int
    n_accepted: int
    n_recovered: int
    bin_counts: Dict[str, int]
    stations: List[StationStats]
    tester_seconds: float
    cost_per_device: float
    p_good: float
    type_i: float
    type_ii: float
    samples_per_device: int
    wall_seconds: float = field(default=0.0)

    @property
    def n_rejected(self) -> int:
        """Dies finally rejected."""
        return self.n_devices - self.n_accepted

    @property
    def accept_fraction(self) -> float:
        """Final accept fraction of the lot."""
        return self.n_accepted / self.n_devices if self.n_devices else 0.0

    @property
    def devices_per_hour(self) -> float:
        """Lot throughput in devices per tester-hour."""
        if self.tester_seconds <= 0.0:
            return float("inf")
        return self.n_devices / self.tester_seconds * 3600.0

    @property
    def simulated_devices_per_second(self) -> float:
        """Simulation (wall-clock) throughput of the batched engine."""
        if self.wall_seconds <= 0.0:
            return float("inf")
        return self.n_devices / self.wall_seconds


class ScreeningLine:
    """A production screening line built around the batched BIST.

    Parameters
    ----------
    config:
        BIST measurement configuration every station uses.
    retest_attempts:
        How many times a rejected die is re-inserted (0 disables retest).
    bin_edges_lsb:
        Ascending measured-|DNL| thresholds separating the speed/quality
        bins of accepted dies; ``n`` edges produce ``n + 1`` bins named
        ``bin-1`` (tightest) to ``bin-n+1``.
    tester:
        Tester model executing the insertions; defaults to the low-cost
        digital tester the full BIST enables.
    devices_per_ic:
        Converters sharing one IC (and thus one insertion).
    """

    def __init__(self, config: BistConfig,
                 retest_attempts: int = 0,
                 bin_edges_lsb: Sequence[float] = DEFAULT_BIN_EDGES_LSB,
                 tester: Optional[TesterModel] = None,
                 devices_per_ic: int = 1) -> None:
        if retest_attempts < 0:
            raise ValueError("retest_attempts must be non-negative")
        edges = [float(e) for e in bin_edges_lsb]
        if any(b <= a for a, b in zip(edges, edges[1:])):
            raise ValueError("bin_edges_lsb must be strictly ascending")
        self.config = config
        self.engine = BatchBistEngine(config)
        self.retest_attempts = int(retest_attempts)
        self.bin_edges_lsb = edges
        self.tester = tester if tester is not None else TesterModel.digital_only()
        self.devices_per_ic = int(devices_per_ic)

    # ------------------------------------------------------------------ #
    # Station helpers
    # ------------------------------------------------------------------ #

    def bin_names(self) -> List[str]:
        """Names of the quality bins, tightest first."""
        return [f"bin-{i + 1}" for i in range(len(self.bin_edges_lsb) + 1)]

    def _insertion_seconds(self, n_devices: int, samples: int,
                           sample_rate: float) -> float:
        """Tester time to push ``n_devices`` through one BIST insertion."""
        if n_devices == 0:
            return 0.0
        schedule = ParallelTestSchedule(
            n_converters=n_devices,
            bits_per_converter=1,
            tester_channels=self.tester.digital_channels,
            time_per_pass_s=samples / sample_rate)
        return schedule.total_time_s

    # ------------------------------------------------------------------ #
    # Lot processing
    # ------------------------------------------------------------------ #

    def screen_lot(self, lot: Union[Lot, Wafer], rng: RngLike = None,
                   store=None) -> LotScreeningReport:
        """Run a lot (or a single wafer) through the whole line.

        Parameters
        ----------
        lot:
            The lot to screen; a bare wafer is treated as a one-wafer lot.
        rng:
            Seed or generator for the acquisition noise of all stations.
        store:
            Optional :class:`~repro.production.store.ResultStore` the
            report is appended to.
        """
        if isinstance(lot, Wafer):
            lot = Lot([lot], lot_id=lot.wafer_id)
        spec = lot.spec
        generator = (rng if isinstance(rng, np.random.Generator)
                     else np.random.default_rng(rng))

        t0 = time.perf_counter()
        accepted_masks: List[np.ndarray] = []
        measured: List[np.ndarray] = []
        truly_good: List[np.ndarray] = []
        first_pass_in = 0
        first_pass_ok = 0
        retest_in = 0
        retest_ok = 0
        samples_per_device = 0

        for wafer in lot:
            result = self.engine.run_wafer(wafer, rng=generator)
            samples_per_device = result.samples_taken
            accepted = result.passed.copy()
            measured_dnl = result.measured_max_dnl_lsb.copy()
            first_pass_in += len(wafer)
            first_pass_ok += result.n_accepted

            for _ in range(self.retest_attempts):
                rejected = np.nonzero(~accepted)[0]
                if rejected.size == 0:
                    break
                retest_in += int(rejected.size)
                retest = self.engine.run_transitions(
                    wafer.transitions[rejected],
                    full_scale=spec.full_scale,
                    sample_rate=spec.sample_rate,
                    rng=generator)
                recovered = rejected[retest.passed]
                retest_ok += int(recovered.size)
                accepted[recovered] = True
                measured_dnl[recovered] = \
                    retest.measured_max_dnl_lsb[retest.passed]

            accepted_masks.append(accepted)
            measured.append(measured_dnl)
            truly_good.append(wafer.good_mask(self.config.dnl_spec_lsb,
                                              self.config.inl_spec_lsb))
        wall_seconds = time.perf_counter() - t0

        accepted_all = np.concatenate(accepted_masks)
        measured_all = np.concatenate(measured)
        good_all = np.concatenate(truly_good)
        n_devices = accepted_all.size
        n_accepted = int(np.count_nonzero(accepted_all))
        # Score the final decisions against the truth with the shared
        # Monte-Carlo result type, so the line reports the same joint
        # (Table 1) error-rate convention as every other population run.
        outcome = PopulationBistResult(n_devices=n_devices,
                                       accepted=accepted_all,
                                       truly_good=good_all)

        # Binning station: grade accepted dies on the measured linearity.
        bins = np.digitize(measured_all[accepted_all], self.bin_edges_lsb)
        names = self.bin_names()
        bin_counts = {name: int(np.count_nonzero(bins == i))
                      for i, name in enumerate(names)}

        # Tester-floor economics.
        bist_seconds = self._insertion_seconds(
            first_pass_in, samples_per_device, spec.sample_rate)
        retest_seconds = self._insertion_seconds(
            retest_in, samples_per_device, spec.sample_rate)
        stations = [
            StationStats("bist", first_pass_in, first_pass_ok, bist_seconds),
        ]
        if self.retest_attempts > 0:
            stations.append(StationStats("retest", retest_in, retest_ok,
                                         retest_seconds))
        stations.append(StationStats("binning", n_accepted, n_accepted, 0.0))

        plan = TestPlan.full_bist(n_bits=spec.n_bits,
                                  samples=max(samples_per_device, 1),
                                  sample_rate=spec.sample_rate)
        cost = cost_per_device(plan, self.tester,
                               devices_per_ic=self.devices_per_ic)

        report = LotScreeningReport(
            lot_id=lot.lot_id,
            n_devices=n_devices,
            n_accepted=n_accepted,
            n_recovered=retest_ok,
            bin_counts=bin_counts,
            stations=stations,
            tester_seconds=bist_seconds + retest_seconds,
            cost_per_device=cost,
            p_good=outcome.p_good,
            type_i=outcome.type_i,
            type_ii=outcome.type_ii,
            samples_per_device=samples_per_device,
            wall_seconds=wall_seconds)
        if store is not None:
            store.add(report)
        return report
