"""Persistent worker pool and zero-copy shared-memory wafer transport.

Before this module existed, every multi-worker dispatch in
:class:`~repro.production.execution.ShardExecutor` built a fresh
``ProcessPoolExecutor`` — forking workers, running a handful of shards,
and tearing the pool down again — and shipped each shard its slice of the
wafer's transition matrix through a pickle pipe.  At small shard sizes the
pool spawn and the per-task pickling dominate the actual screening work
(``BENCH_6.json`` records the collapse).  This module removes both costs:

:class:`WorkerPool`
    A long-lived pool of worker processes.  Spawned once (lazily, on the
    first dispatch), reused by every subsequent dispatch — across engine
    runs, wafers, insertions and whole campaign scenarios — and torn down
    explicitly via :meth:`WorkerPool.close` (or a ``with`` block).  A
    module-level *default pool* (:func:`get_default_pool`) plus an ambient
    override (:func:`shared_pool`) let bare ``run_wafer(plan=...)`` calls
    reuse warm workers without any plumbing.

:class:`SharedWaferBuffer`
    A wafer-sized ``multiprocessing.shared_memory`` segment.  The parent
    materialises (or draws) the transition matrix directly into the
    segment; workers attach the same pages read-only and slice their
    shard out with **zero copies and zero pickled arrays** — a task ships
    a tiny :class:`SliceRef` descriptor instead of matrix rows.

:class:`SliceRef`
    The picklable shard descriptor: either ``("shm", name, offset,
    shape)`` — attach the named segment and take a view — or ``("draw",
    spec, seed, bounds)`` — regenerate the rows worker-side with
    :meth:`~repro.production.lot.Wafer.draw_slice` when the parent never
    materialised the wafer at all.

Determinism is untouched by any of this: a :class:`SliceRef` resolves to
the *bit-identical* rows the old pickle path shipped, worker processes
hold no RNG state between tasks (every shard still carries its own
spawn-key seed), and which worker executes which shard remains
irrelevant.  The pool is a scheduling optimisation, not a semantics
change — the invariance grids in ``tests/production`` and
``tests/campaign`` prove it.

Resource hygiene: segments are named ``repro_*`` so leak checks can spot
them, attaching processes never double-register with the multiprocessing
``resource_tracker`` (the classic spurious-"leaked shared_memory"
warning), owners unlink on :meth:`~SharedWaferBuffer.close`, and a
``weakref.finalize`` safety net plus an ``atexit`` hook on the default
pool guarantee nothing outlives the interpreter.
"""

from __future__ import annotations

import atexit
import binascii
import os
import threading
import time
import weakref
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.telemetry.core import (
    Telemetry,
    current_telemetry,
    telemetry_session,
)

__all__ = [
    "AUTO_SHARE_MIN_BYTES",
    "PoolBrokenError",
    "SharedWaferBuffer",
    "SliceRef",
    "WorkerPool",
    "as_slice_ref",
    "close_default_pool",
    "current_pool",
    "get_default_pool",
    "shared_pool",
    "share_wafer",
    "sweep_stale_segments",
]


class PoolBrokenError(RuntimeError):
    """A pool worker died mid-flight (OOM kill, segfault, SIGKILL).

    Raised instead of the stdlib's opaque ``BrokenProcessPool``.  By the
    time the caller sees it, the broken pool has been closed and evicted
    from both the module default and the ambient :func:`shared_pool`
    stack, so the *next* :func:`get_default_pool` (or plan-based
    dispatch) builds a fresh pool of live workers.  Every shard is
    replayable by ``(seed, shard index)``, so callers such as ``repro
    serve`` recover by rebuilding and re-dispatching the affected shards
    — the error is a retry signal, not a terminal state.
    """

#: Transition matrices at least this large are automatically staged into a
#: transient shared-memory segment when dispatched to a multi-worker pool
#: (one memcpy into the segment instead of one pickled copy per shard).
AUTO_SHARE_MIN_BYTES = 1 << 18

#: Attached-segment cache entries kept per worker process (FIFO eviction).
_ATTACH_CACHE_SIZE = 8


def _multiprocessing_context():
    """The start method used for worker pools.

    ``fork`` when the platform offers it (cheapest, and the engines ship
    no unpicklable state either way), the platform default otherwise.
    """
    import multiprocessing

    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods and os.name == "posix":
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


# ---------------------------------------------------------------------- #
# Shared-memory segments and slice descriptors
# ---------------------------------------------------------------------- #

#: Segments owned by *this* process, by name -> full matrix view.
#: :func:`as_slice_ref` consults it to recognise array views that are
#: backed by a registered segment.  Guarded by :data:`_SEGMENTS_LOCK`:
#: interleaved campaign scenario threads register segments (auto-staging
#: in ``ShardExecutor.execute``) and unregister them (``_cleanup``, also
#: reachable from GC finalizers) while other threads iterate in
#: :func:`as_slice_ref`.
_SEGMENTS: Dict[str, np.ndarray] = {}
_SEGMENTS_LOCK = threading.Lock()

_NAME_LOCK = threading.Lock()
_NAME_COUNTER = 0


def _next_segment_name() -> str:
    """A collision-resistant ``repro_*`` segment name.

    The prefix is load-bearing: the leak checks (tests and the CI
    ``pool-smoke`` job) assert ``/dev/shm`` holds no ``repro_*`` entries
    after pool close, which only works if every segment we create is
    recognisable as ours.
    """
    global _NAME_COUNTER
    with _NAME_LOCK:
        _NAME_COUNTER += 1
        count = _NAME_COUNTER
    token = binascii.hexlify(os.urandom(4)).decode("ascii")
    return f"repro_{os.getpid()}_{count}_{token}"


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except (PermissionError, OSError):  # pragma: no cover - exists
        return True
    return True


def sweep_stale_segments(shm_dir: str = "/dev/shm") -> List[str]:
    """Unlink ``repro_*`` segments whose creating process is dead.

    A SIGKILLed process cannot run cleanup, so its in-flight
    :class:`SharedWaferBuffer` segments survive in ``/dev/shm`` (the
    multiprocessing resource tracker dies with the process group).  The
    segment name embeds the creator pid (``repro_<pid>_<n>_<token>``),
    so a successor — ``repro serve --resume`` is the caller — can
    reclaim the space safely: only segments whose pid no longer exists
    are touched, never this process's own or any live process's.
    Returns the names removed.
    """
    removed: List[str] = []
    try:
        names = os.listdir(shm_dir)
    except OSError:
        return removed
    own = os.getpid()
    for name in names:
        if not name.startswith("repro_"):
            continue
        parts = name.split("_")
        if len(parts) < 4 or not parts[1].isdigit():
            continue
        pid = int(parts[1])
        if pid == own or _pid_alive(pid):
            continue
        try:
            os.unlink(os.path.join(shm_dir, name))
        except OSError:  # pragma: no cover - concurrent sweep
            continue
        removed.append(name)
    return removed


class SliceRef:
    """Picklable descriptor of a contiguous device-row slice.

    Two kinds:

    ``"shm"``
        Rows live in a named shared-memory segment; :meth:`resolve`
        attaches the segment (read-only, cached per process) and returns
        a zero-copy view.
    ``"draw"``
        Rows were never materialised by the parent; :meth:`resolve`
        regenerates them with
        :meth:`~repro.production.lot.Wafer.draw_slice`, bit-identical to
        the sharded draw the parent would have produced.
    """

    __slots__ = ("kind", "name", "offset", "shape", "dtype",
                 "spec", "seed", "lo", "hi", "block_devices")

    def __init__(self, kind: str, *, name: str = "", offset: int = 0,
                 shape: Tuple[int, ...] = (), dtype: str = "float64",
                 spec: Any = None, seed: Any = None, lo: int = 0,
                 hi: int = 0, block_devices: int = 0) -> None:
        if kind not in ("shm", "draw"):
            raise ValueError(f"unknown SliceRef kind {kind!r}")
        self.kind = kind
        self.name = name
        self.offset = int(offset)
        self.shape = tuple(shape)
        self.dtype = str(dtype)
        self.spec = spec
        self.seed = seed
        self.lo = int(lo)
        self.hi = int(hi)
        self.block_devices = int(block_devices)

    def __getstate__(self):
        return {slot: getattr(self, slot) for slot in self.__slots__}

    def __setstate__(self, state):
        for slot, value in state.items():
            object.__setattr__(self, slot, value)

    def __repr__(self) -> str:
        if self.kind == "shm":
            return (f"SliceRef(shm {self.name!r} offset={self.offset} "
                    f"shape={self.shape})")
        return f"SliceRef(draw [{self.lo}, {self.hi}))"

    @property
    def n_devices(self) -> int:
        if self.kind == "shm":
            return self.shape[0] if self.shape else 0
        return self.hi - self.lo

    def resolve(self) -> np.ndarray:
        """Materialise the rows this descriptor names (see class doc)."""
        if self.kind == "shm":
            return _attach_view(self.name, self.offset, self.shape,
                                np.dtype(self.dtype))
        from repro.production.lot import Wafer

        return Wafer.draw_slice(self.spec, self.lo, self.hi, self.seed,
                                block_devices=self.block_devices)


def draw_slice_ref(spec: Any, seed: Any, lo: int, hi: int,
                   block_devices: int) -> SliceRef:
    """A ``"draw"`` :class:`SliceRef`: regenerate rows worker-side.

    The fallback transport for wafers the parent never materialised —
    the descriptor carries only ``(spec, seed, bounds)`` and the worker
    rebuilds its rows with
    :meth:`~repro.production.lot.Wafer.draw_slice`.
    """
    return SliceRef("draw", spec=spec, seed=seed, lo=lo, hi=hi,
                    block_devices=block_devices)


def as_slice_ref(array: Any) -> Optional[SliceRef]:
    """The ``"shm"`` descriptor of an array view, if one applies.

    Returns a :class:`SliceRef` when ``array`` is a C-contiguous view
    into a registered :class:`SharedWaferBuffer` segment, else ``None``.
    This is what makes zero-copy transparent: callers keep slicing plain
    ``wafer.transitions[lo:hi]`` arrays and the dispatch layer recognises
    the shared-memory-backed ones by address.
    """
    if not _SEGMENTS or not isinstance(array, np.ndarray):
        return None
    if not array.flags.c_contiguous or array.size == 0:
        return None
    ptr = array.__array_interface__["data"][0]
    with _SEGMENTS_LOCK:
        segments = list(_SEGMENTS.items())
    for name, segment in segments:
        base = segment.__array_interface__["data"][0]
        if array.dtype == segment.dtype and base <= ptr and \
                ptr + array.nbytes <= base + segment.nbytes:
            return SliceRef("shm", name=name, offset=ptr - base,
                            shape=array.shape, dtype=array.dtype.str)
    return None


class SharedWaferBuffer:
    """A transition matrix living in a shared-memory segment.

    Create with :meth:`from_array` (one memcpy of an existing matrix) or
    :meth:`draw_sharded` (draw the matrix block-by-block *directly into*
    the segment, bit-identical to
    :meth:`~repro.production.lot.Wafer.draw_sharded`).  The parent-side
    :attr:`array` view is registered so :func:`as_slice_ref` recognises
    any slice of it; workers attach the same pages read-only.

    The creating process owns the segment: :meth:`close` (or the ``with``
    block, or the garbage-collection safety net) unlinks it.  On Linux,
    unlinking only removes the name — mappings workers already hold stay
    valid until they drop them.
    """

    def __init__(self, shm, shape: Tuple[int, ...],
                 dtype: np.dtype, owner: bool) -> None:
        self._shm = shm
        self.shape = tuple(shape)
        self.dtype = np.dtype(dtype)
        self.owner = bool(owner)
        self._closed = False
        self._array = np.ndarray(self.shape, dtype=self.dtype,
                                 buffer=shm.buf)
        with _SEGMENTS_LOCK:
            _SEGMENTS[self.name] = self._array
        self._finalizer = weakref.finalize(
            self, SharedWaferBuffer._cleanup, shm, self.name, self.owner)

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #

    @classmethod
    def allocate(cls, shape: Tuple[int, ...],
                 dtype: Any = np.float64) -> "SharedWaferBuffer":
        """An owned, zero-initialised segment of the given geometry."""
        from multiprocessing import shared_memory

        dtype = np.dtype(dtype)
        nbytes = int(np.prod(shape)) * dtype.itemsize
        if nbytes <= 0:
            raise ValueError("cannot allocate an empty shared buffer")
        while True:
            name = _next_segment_name()
            try:
                shm = shared_memory.SharedMemory(
                    name=name, create=True, size=nbytes)
                break
            except FileExistsError:  # pragma: no cover - pid+token clash
                continue
        return cls(shm, shape, dtype, owner=True)

    @classmethod
    def from_array(cls, array: np.ndarray) -> "SharedWaferBuffer":
        """Copy an existing matrix into a new owned segment (one memcpy)."""
        array = np.asarray(array)
        buffer = cls.allocate(array.shape, array.dtype)
        buffer._array[...] = array
        return buffer

    @classmethod
    def draw_sharded(cls, spec: Any, seed: Any,
                     block_devices: Optional[int] = None
                     ) -> "SharedWaferBuffer":
        """Draw a wafer's matrix block-by-block straight into a segment.

        Bit-identical to
        ``Wafer.draw_sharded(spec, seed, block_devices).transitions`` —
        same per-block child seeds — but the full matrix only ever exists
        in the shared segment: peak private memory is one block.
        """
        from repro.production.execution import (
            DEFAULT_SHARD_DEVICES,
            iter_slices,
        )
        from repro.production.lot import Wafer

        if block_devices is None:
            block_devices = DEFAULT_SHARD_DEVICES
        buffer = cls.allocate((spec.n_devices, spec.n_codes - 1))
        for lo, hi in iter_slices(spec.n_devices, block_devices):
            buffer._array[lo:hi] = Wafer.draw_slice(
                spec, lo, hi, seed, block_devices=block_devices)
        return buffer

    # ------------------------------------------------------------------ #
    # Views and descriptors
    # ------------------------------------------------------------------ #

    @property
    def name(self) -> str:
        return self._shm.name

    @property
    def array(self) -> np.ndarray:
        """The parent-side matrix view (registered for zero-copy dispatch)."""
        if self._closed:
            raise ValueError("shared wafer buffer is closed")
        return self._array

    def ref(self, lo: int, hi: int) -> SliceRef:
        """The :class:`SliceRef` of rows ``lo:hi``."""
        if self._closed:
            raise ValueError("shared wafer buffer is closed")
        if not 0 <= lo <= hi <= self.shape[0]:
            raise ValueError(f"slice [{lo}, {hi}) is outside the buffer")
        row_bytes = int(np.prod(self.shape[1:])) * self.dtype.itemsize
        return SliceRef("shm", name=self.name, offset=lo * row_bytes,
                        shape=(hi - lo,) + self.shape[1:],
                        dtype=self.dtype.str)

    def wafer(self, spec: Any, wafer_id: str = "W0"):
        """Wrap the segment as a :class:`~repro.production.lot.Wafer`.

        The wafer's ``transitions`` is the zero-copy segment view, so any
        slice of it dispatches by descriptor.
        """
        from repro.production.lot import Wafer

        return Wafer(spec, self._array, wafer_id=wafer_id)

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    @staticmethod
    def _cleanup(shm, name: str, owner: bool) -> None:
        with _SEGMENTS_LOCK:
            _SEGMENTS.pop(name, None)
        try:
            shm.close()
        except (BufferError, OSError):  # pragma: no cover - live views
            pass
        if owner:
            try:
                shm.unlink()
            except (FileNotFoundError, OSError):  # pragma: no cover
                pass

    def close(self) -> None:
        """Drop the mapping; unlink the segment if this process owns it.

        Idempotent.  Emits a ``pool.shm_detach`` span when telemetry is
        enabled, the bookend of the workers' ``pool.shm_attach`` spans.
        Outstanding views of :attr:`array` (the caller's problem to drop)
        keep their pages mapped, but the segment's name is removed either
        way — nothing is left in ``/dev/shm``.
        """
        if self._closed:
            return
        self._closed = True
        name, nbytes = self.name, int(np.prod(self.shape)) \
            * self.dtype.itemsize
        # Release the parent view before closing, else the exported
        # memoryview keeps SharedMemory.close() from unmapping.
        self._array = None
        t = current_telemetry()
        if t.enabled:
            with t.span("pool.shm_detach", segment=name, nbytes=nbytes,
                        owner=self.owner):
                self._finalizer()
        else:
            self._finalizer()

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "SharedWaferBuffer":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


def share_wafer(wafer) -> Tuple[SharedWaferBuffer, Any]:
    """Re-home a wafer's matrix into shared memory.

    Returns ``(buffer, shared_wafer)`` where ``shared_wafer`` is a new
    :class:`~repro.production.lot.Wafer` whose ``transitions`` is the
    zero-copy segment view — every engine slice of it then dispatches by
    descriptor.  The caller owns the buffer and must :meth:`close` it
    after the last dispatch that uses the wafer.
    """
    buffer = SharedWaferBuffer.from_array(wafer.transitions)
    return buffer, buffer.wafer(wafer.spec, wafer_id=wafer.wafer_id)


# ---------------------------------------------------------------------- #
# Worker-side attachment cache
# ---------------------------------------------------------------------- #

#: Per-process cache of attached segments: name -> (keepalive, ndarray).
_ATTACHED: "OrderedDict[str, Tuple[Any, np.ndarray]]" = OrderedDict()


def _attach_readonly(name: str) -> Tuple[Any, np.ndarray]:
    """Attach a named segment read-only, without resource-tracker noise.

    On Linux the segment is mapped straight off ``/dev/shm`` — a plain
    read-only ``mmap`` that the multiprocessing ``resource_tracker``
    never hears about (attaching via ``SharedMemory(name=...)`` would
    *register* the segment in the attaching process and spuriously warn
    about — or worse, unlink — it at shutdown; CPython only grew a
    ``track=False`` escape hatch in 3.13).  Elsewhere it falls back to
    ``SharedMemory`` and best-effort unregisters.
    """
    import mmap

    path = f"/dev/shm/{name}"
    if os.path.exists(path):
        with open(path, "rb") as handle:
            mapped = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
        flat = np.frombuffer(mapped, dtype=np.uint8)
        return mapped, flat
    from multiprocessing import shared_memory  # pragma: no cover

    shm = shared_memory.SharedMemory(name=name)
    try:
        from multiprocessing import resource_tracker

        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:
        pass
    flat = np.frombuffer(shm.buf, dtype=np.uint8)
    return shm, flat


def _attach_view(name: str, offset: int, shape: Tuple[int, ...],
                 dtype: np.dtype) -> np.ndarray:
    """A zero-copy view of ``shape`` rows at ``offset`` in segment ``name``.

    In the owning process the registered array is sliced directly; in a
    worker the segment is attached once (``pool.shm_attach`` span under
    the worker's telemetry) and cached for subsequent shards.
    """
    with _SEGMENTS_LOCK:
        registered = _SEGMENTS.get(name)
    if registered is not None:
        count = int(np.prod(shape))
        flat = np.frombuffer(registered, dtype=dtype, count=count,
                             offset=offset)
        return flat.reshape(shape)
    cached = _ATTACHED.get(name)
    if cached is None:
        t = current_telemetry()
        with t.span("pool.shm_attach", segment=name):
            cached = _attach_readonly(name)
        _ATTACHED[name] = cached
        while len(_ATTACHED) > _ATTACH_CACHE_SIZE:
            _, (keepalive, _flat) = _ATTACHED.popitem(last=False)
            try:
                keepalive.close()
            except (BufferError, OSError):  # pragma: no cover
                pass
    else:
        _ATTACHED.move_to_end(name)
    _keepalive, flat = cached
    count = int(np.prod(shape))
    view = np.frombuffer(flat, dtype=dtype, count=count, offset=offset)
    return view.reshape(shape)


def _detach_all() -> None:
    """Drop every cached attachment (test hook; workers call it on exit)."""
    while _ATTACHED:
        _, (keepalive, _flat) = _ATTACHED.popitem(last=False)
        try:
            keepalive.close()
        except (BufferError, OSError):  # pragma: no cover
            pass


# ---------------------------------------------------------------------- #
# Worker-side trampoline
# ---------------------------------------------------------------------- #

#: Tasks this worker process has executed; ``> 0`` marks a warm worker.
_TASKS_RUN = 0


def _resolve_args(args: Tuple) -> Tuple:
    return tuple(a.resolve() if isinstance(a, SliceRef) else a
                 for a in args)


def _run_instrumented(func: Callable[..., Any], args: Tuple,
                      meta: Optional[dict]) -> Any:
    """Run one shard under the ambient telemetry's per-shard span/timer."""
    t = current_telemetry()
    attrs = dict(meta or {})
    attrs["pid"] = os.getpid()
    with t.span("executor.shard", **attrs) as span:
        result = func(*_resolve_args(args))
    t.record_timer("executor.shard", span.elapsed_s)
    return result


def _pool_task(payload) -> Tuple[bool, Any]:
    """Worker-side trampoline: unpack one shard task and run it.

    Module-level so it pickles by reference under every multiprocessing
    start method.  ``SliceRef`` arguments are resolved here — shared
    memory attached, or rows regenerated — so the pipe only ever carried
    descriptors.  Returns ``(warm, result)`` where ``warm`` flags a
    worker that had already executed at least one task (the parent
    counts these as ``pool.tasks_reused_worker``).

    When the parent's telemetry is enabled (``collect``), the worker runs
    under a fresh collector and ships its snapshot home alongside the
    result; ``start_monotonic`` is read on the system-wide monotonic
    clock so the parent can measure pool queue wait.
    """
    global _TASKS_RUN
    warm = _TASKS_RUN > 0
    _TASKS_RUN += 1
    func, args, collect, meta = payload
    if not collect:
        return warm, func(*_resolve_args(args))
    start_monotonic = time.monotonic()
    with telemetry_session(Telemetry()) as worker_telemetry:
        result = _run_instrumented(func, args, meta)
    record = worker_telemetry.snapshot()
    record["pid"] = os.getpid()
    record["start_monotonic"] = start_monotonic
    return warm, (result, record)


def _sleep_task(seconds: float) -> None:
    time.sleep(seconds)


# ---------------------------------------------------------------------- #
# The persistent pool
# ---------------------------------------------------------------------- #

class WorkerPool:
    """A persistent pool of worker processes for shard dispatch.

    Wraps one long-lived ``ProcessPoolExecutor``: workers are forked on
    the first dispatch (or :meth:`warm_up`) and stay resident — holding
    their attached shared-memory segments and warm interpreter state —
    until :meth:`close`.  Order preservation, telemetry collection and
    queue-wait measurement all live in :meth:`dispatch`, so
    :class:`~repro.production.execution.ShardExecutor` is just the
    shard-planning layer above it.

    Thread-safe: several campaign scenario threads can interleave their
    shards into the one pool concurrently; results only depend on each
    task's own arguments, so scheduling order is irrelevant.
    """

    def __init__(self, workers: int) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self._workers = int(workers)
        self._executor: Optional[ProcessPoolExecutor] = None
        self._closed = False
        self._broken = False
        self._lock = threading.Lock()
        self._outstanding = 0

    @property
    def workers(self) -> int:
        return self._workers

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def broken(self) -> bool:
        """Whether a worker death condemned this pool (it is closed too)."""
        return self._broken

    def _mark_broken(self, exc: BaseException) -> "PoolBrokenError":
        """Condemn this pool after a worker died; return the typed error.

        The broken executor must never serve another dispatch: it is
        closed here, and evicted from the module default and the ambient
        :func:`shared_pool` stack so no later :func:`get_default_pool` or
        plan-based dispatch inherits it.  Concurrent dispatchers of the
        same pool all land here; marking is idempotent.
        """
        self._broken = True
        _evict_pool(self)
        self.close()
        t = current_telemetry()
        if t.enabled:
            t.count("pool.broken")
        return PoolBrokenError(
            f"a worker process of the {self._workers}-worker pool died "
            f"mid-dispatch ({exc}); the pool has been closed and evicted "
            f"— rebuild (get_default_pool / a new WorkerPool) and retry "
            f"the affected shards")

    def _ensure(self) -> ProcessPoolExecutor:
        if self._broken:
            raise PoolBrokenError(
                "worker pool is broken (a worker died); build a new one")
        if self._closed:
            raise RuntimeError("worker pool is closed")
        with self._lock:
            if self._executor is None:
                self._executor = ProcessPoolExecutor(
                    max_workers=self._workers,
                    mp_context=_multiprocessing_context())
                t = current_telemetry()
                if t.enabled:
                    t.count("pool.workers_spawned", self._workers)
            return self._executor

    def warm_up(self) -> "WorkerPool":
        """Fork *all* the workers now (they normally spawn on dispatch).

        Useful before starting scenario threads (forking from a moment
        when the parent holds no extra threads is the safe order) and
        before timing a warm-pool benchmark.

        On Python >= 3.11 a fork-context executor launches every worker
        on the first submit, but on 3.9/3.10 workers spawn on demand —
        one per submit with no idle worker — so a single no-op would
        leave the rest to be forked later, mid-campaign, defeating the
        fork-before-threads rationale.  Instead we submit batches of
        short blocking tasks (each concurrent submit forces a fresh
        spawn while no worker is idle) until every worker process
        exists; afterwards the executor is at ``max_workers`` and never
        forks again.
        """
        executor = self._ensure()
        deadline = time.monotonic() + 30.0
        try:
            while True:
                missing = self._workers - len(executor._processes)
                if missing <= 0:
                    break
                futures = [executor.submit(_sleep_task, 0.05)
                           for _ in range(missing)]
                for future in futures:
                    future.result()
                if time.monotonic() > deadline:  # pragma: no cover
                    break
        except BrokenProcessPool as exc:
            raise self._mark_broken(exc) from exc
        return self

    def worker_pids(self) -> List[int]:
        """PIDs of the currently forked workers (diagnostics/tests).

        Defensive on purpose: the executor spawns workers on demand from
        its own management thread, so the process map can gain entries
        (racing ``dict`` iteration) or hold just-constructed processes
        whose ``pid`` is still ``None`` while we look.  Snapshot and
        filter instead of tripping over either.
        """
        executor = self._executor
        if executor is None:
            return []
        try:
            processes = list(executor._processes.values())
        except RuntimeError:  # pragma: no cover - mutated mid-iteration
            return []
        return [p.pid for p in processes
                if p is not None and p.pid is not None]

    # ------------------------------------------------------------------ #
    # Dispatch
    # ------------------------------------------------------------------ #

    def dispatch(self, func: Callable[..., Any],
                 arg_tuples: Sequence[Tuple],
                 metas: Optional[Sequence[Optional[dict]]] = None,
                 progress: Any = None,
                 observer: Optional[Callable[[int, Any], None]] = None
                 ) -> List[Any]:
        """Run ``func(*args)`` for every tuple on the pool, in order.

        Array arguments that are views into registered shared segments
        are shipped as :class:`SliceRef` descriptors automatically; the
        worker trampoline resolves them back to zero-copy views.  With
        telemetry enabled, per-shard worker snapshots are absorbed, the
        submit→start queue wait is timed, warm-worker task counts and the
        ``pool.queue_depth`` gauge are recorded.

        ``observer``, when given, is called as ``observer(i, result)`` for
        every task **in input order** as results are collected (the SPC
        seam of :meth:`ShardExecutor.map`).  An observer that raises
        cancels every not-yet-started task of this dispatch before the
        exception propagates, so remaining shards genuinely never run.
        """
        t = current_telemetry()
        executor = self._ensure()
        tasks = [tuple(as_slice_ref(a) or a for a in args)
                 for args in arg_tuples]
        collect = bool(t.enabled)
        if collect:
            t.count("pool.tasks_dispatched", len(tasks))
        if metas is None:
            metas = [None] * len(tasks)

        if (observer is None and not collect
                and (progress is None or not progress.active)):
            # Uninstrumented fast path: ordered map, flags dropped.
            try:
                return [result for _warm, result in executor.map(
                    _pool_task,
                    [(func, args, False, None) for args in tasks])]
            except BrokenProcessPool as exc:
                raise self._mark_broken(exc) from exc

        submit_at: List[float] = []
        futures: List[Any] = []
        try:
            for i, args in enumerate(tasks):
                submit_at.append(time.monotonic())
                future = executor.submit(
                    _pool_task, (func, args, collect, metas[i]))
                futures.append(future)
                with self._lock:
                    self._outstanding += 1
                    depth = self._outstanding
                future.add_done_callback(self._task_done)
                if collect:
                    t.set_gauge("pool.queue_depth", depth)
            if progress is not None and progress.active:
                index_of = {future: i for i, future in enumerate(futures)}
                for future in as_completed(futures):
                    progress.step(index_of[future])
            results = []
            warm_tasks = 0
            for i, future in enumerate(futures):
                warm, value = future.result()
                if warm:
                    warm_tasks += 1
                if collect:
                    value, record = value
                    queue_wait = max(
                        0.0, record["start_monotonic"] - submit_at[i])
                    t.absorb_worker(record, queue_wait)
                if observer is not None:
                    observer(i, value)
                results.append(value)
        except BaseException as exc:
            for future in futures:
                future.cancel()
            if collect:
                # This dispatch abandons its queue: without the reset the
                # gauge would keep reporting the last pre-failure depth
                # forever (nothing else writes it until the next
                # dispatch).  Concurrent dispatchers re-assert the true
                # depth on their next submit.
                t.set_gauge("pool.queue_depth", 0)
            if isinstance(exc, BrokenProcessPool):
                raise self._mark_broken(exc) from exc
            raise
        if collect and warm_tasks:
            t.count("pool.tasks_reused_worker", warm_tasks)
        return results

    def _task_done(self, _future) -> None:
        with self._lock:
            self._outstanding -= 1

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    def close(self) -> None:
        """Shut the workers down and release the pool.  Idempotent."""
        self._closed = True
        with self._lock:
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


# ---------------------------------------------------------------------- #
# Ambient and default pools
# ---------------------------------------------------------------------- #

#: The ambient-pool stack and the module default are process globals
#: shared across threads (scenario threads read the pool the main thread
#: installed), so mutations go through :data:`_POOL_LOCK` — otherwise
#: two threads dispatching concurrently could each create a default pool
#: (one leaking its workers until atexit) or interleave ambient
#: push/pop from concurrent :func:`shared_pool` blocks.
_AMBIENT: List[WorkerPool] = []
_DEFAULT: Optional[WorkerPool] = None
_ATEXIT_REGISTERED = False
_POOL_LOCK = threading.Lock()


def current_pool() -> Optional[WorkerPool]:
    """The innermost :func:`shared_pool` pool, if one is installed.

    The stack is process-global: a pool installed by one thread (the
    campaign driver) is deliberately visible to every other thread
    (the scenario threads it spawns).
    """
    with _POOL_LOCK:
        return _AMBIENT[-1] if _AMBIENT else None


@contextmanager
def shared_pool(workers: Optional[int] = None,
                pool: Optional[WorkerPool] = None):
    """Install a pool as the ambient dispatch target for a ``with`` block.

    Every plan-based dispatch inside the block (any engine, any wafer,
    any scenario) reuses the one pool instead of consulting the module
    default.  Pass an existing ``pool`` to borrow it (left open on exit),
    or a ``workers`` count to create one for the block (closed on exit).
    """
    created = pool is None
    if created:
        if workers is None:
            raise ValueError("shared_pool needs a worker count or a pool")
        pool = WorkerPool(workers)
    with _POOL_LOCK:
        _AMBIENT.append(pool)
    try:
        yield pool
    finally:
        # Remove by identity: concurrent shared_pool blocks on other
        # threads may have pushed since, so ours need not be last.
        with _POOL_LOCK:
            for i in range(len(_AMBIENT) - 1, -1, -1):
                if _AMBIENT[i] is pool:
                    del _AMBIENT[i]
                    break
        if created:
            pool.close()


def get_default_pool(workers: int) -> WorkerPool:
    """The module-level default pool, grown to at least ``workers``.

    Created on first use and kept warm across calls — this is what lets a
    bare ``engine.run_wafer(..., plan=ExecutionPlan(workers=4))`` reuse
    the workers a previous call (or a whole previous campaign) already
    forked.  A request for more workers than the current default carries
    closes and respawns it at the larger size; a smaller request reuses
    the existing pool as-is (scheduling only — results are identical by
    construction).  An ``atexit`` hook guarantees shutdown.
    """
    global _DEFAULT, _ATEXIT_REGISTERED
    with _POOL_LOCK:
        if _DEFAULT is not None and not _DEFAULT.closed \
                and _DEFAULT.workers >= workers:
            return _DEFAULT
        stale, _DEFAULT = _DEFAULT, WorkerPool(workers)
        if not _ATEXIT_REGISTERED:
            atexit.register(close_default_pool)
            _ATEXIT_REGISTERED = True
        pool = _DEFAULT
    if stale is not None:
        stale.close()
    return pool


def close_default_pool() -> None:
    """Shut down the module default pool (idempotent; CLI/test teardown)."""
    global _DEFAULT
    with _POOL_LOCK:
        stale, _DEFAULT = _DEFAULT, None
    if stale is not None:
        stale.close()


def _evict_pool(pool: WorkerPool) -> None:
    """Remove a (broken) pool from the default slot and the ambient stack.

    Without the eviction a dead default pool would be handed to every
    subsequent :func:`get_default_pool` caller (``closed`` guards reject
    it only after :meth:`WorkerPool.close`, and a broken executor is not
    closed by the stdlib), and an ambient :func:`shared_pool` block would
    keep feeding it until exit.  The ``shared_pool`` context managers
    tolerate the early removal: their exit path deletes by identity and
    simply finds nothing.
    """
    global _DEFAULT
    with _POOL_LOCK:
        if _DEFAULT is pool:
            _DEFAULT = None
        _AMBIENT[:] = [p for p in _AMBIENT if p is not pool]
