"""Deterministic scale-out execution: sharded, multi-worker batch runs.

Every batch engine in :mod:`repro.production` is an array program over the
device axis, and until now each carried its own hand-rolled chunk loop on a
single core.  This module is the shared execution layer that scales any of
them out: an :class:`ExecutionPlan` describes *how* a wafer is executed
(worker count, per-chunk memory budget, shard granularity) and a
:class:`ShardExecutor` runs any engine conforming to the
:class:`WaferEngine` protocol — ``prepare`` once, ``run_shard`` per device
slice (possibly in parallel worker processes), ``merge`` the per-shard
results back into one wafer-level result.

Determinism is the design centre, not an afterthought:

* **Shards are fixed-size device blocks** (``plan.shard_devices``), not
  "the wafer divided by the worker count".  Shard ``i`` always covers the
  same device rows no matter how many workers the plan carries.
* **Per-shard seeds are spawned by shard index** with
  :class:`numpy.random.SeedSequence` — shard ``i`` derives child ``i`` of
  the run's root sequence regardless of which process executes it.
* **Intra-shard chunking is RNG-transparent**: a shard's noise stream is
  consumed in device order, and :class:`numpy.random.Generator` draws the
  identical variate sequence whether the ``(devices, samples)`` matrix is
  materialised in one call or in successive chunks.

Together these give the invariant the production line depends on: for any
``(workers, chunk_size)`` pair, a plan-based run is **bit-identical** to
the same plan run serially (``workers=1``) — and, whenever the engine
consumes no randomness (the paper's nominal noise-free configurations), to
the engine's plain single-shot ``run_wafer`` as well.  With acquisition
noise configured, plan-based runs use the per-shard seeding discipline
described above instead of the legacy single shared stream (the two cannot
coincide: a shared stream cannot be split across processes without
serialising it), so a noisy plan-based run is reproducible from its seed
and invariant under the execution geometry, but intentionally distinct
from ``run_wafer(rng=...)`` without a plan.

The same fixed-block seeding is reused by
:meth:`repro.production.lot.Wafer.draw_sharded` so that a worker can draw
*just its slice* of a wafer's parameter matrix, bit-identical to the rows
of the full sharded draw, without the full wafer ever existing in its
address space.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from repro.production.pool import (
    AUTO_SHARE_MIN_BYTES,
    SharedWaferBuffer,
    WorkerPool,
    _run_instrumented,
    as_slice_ref,
    current_pool,
    get_default_pool,
)
from repro.telemetry.core import current_telemetry
from repro.telemetry.log import ShardProgress

__all__ = [
    "DEFAULT_SHARD_DEVICES",
    "ExcursionAbort",
    "ExecutionAborted",
    "ExecutionPlan",
    "ShardExecutor",
    "WaferEngine",
    "abort_scope",
    "check_abort",
    "current_abort",
    "current_journal",
    "current_monitor",
    "iter_slices",
    "journal_scope",
    "resolve_plan_seed",
    "spawn_shard_seeds",
    "spc_scope",
]

SeedLike = Union[int, np.integer, np.random.SeedSequence, None]

#: Devices per shard: the granularity of both work dispatch and per-shard
#: seed spawning.  A fixed default (rather than "devices / workers") is
#: what makes plan-based results independent of the worker count.
DEFAULT_SHARD_DEVICES = 1024


def iter_slices(n: int, size: int) -> Iterator[Tuple[int, int]]:
    """Yield ``(lo, hi)`` bounds covering ``range(n)`` in blocks of ``size``.

    The canonical chunk loop of the production subsystem; every engine's
    intra-shard memory chunking goes through here instead of a hand-rolled
    ``for lo in range(0, n, size)``.
    """
    if size < 1:
        raise ValueError("slice size must be positive")
    for lo in range(0, n, size):
        yield lo, min(lo + size, n)


# ---------------------------------------------------------------------- #
# Cooperative abort and shard-result journaling (ambient, per-thread)
# ---------------------------------------------------------------------- #

class ExecutionAborted(RuntimeError):
    """The ambient abort signal fired: stop submitting shards.

    Raised by :func:`check_abort` between shard batches when the
    installed :class:`threading.Event` is set — the cooperative
    cancellation a campaign uses to stop sibling scenario threads
    promptly once one of them failed.  Purely a scheduling interruption:
    no partial results are published.
    """


class ExcursionAbort(ExecutionAborted):
    """An installed SPC monitor flagged an excursion: stop this wafer.

    Raised by a :func:`spc_scope` monitor while the executor streams
    shard results through it; the dispatch layer cancels every
    not-yet-started shard of the run before the exception propagates.
    Unlike the plain scheduling :class:`ExecutionAborted`, this abort
    *does* publish partial results: :meth:`ShardExecutor.run` attaches
    the merged contiguous prefix of completed shards (``partial``,
    including the shard that tripped the chart) plus ``devices_done`` /
    ``devices_total`` before re-raising, so the screening line can
    disposition the aborted wafer.
    """

    def __init__(self, shard: int, statistic: str, value: float,
                 threshold: float, wafer_id: str = "") -> None:
        super().__init__(
            f"excursion detected at shard {shard}"
            f"{f' of wafer {wafer_id}' if wafer_id else ''}: "
            f"{statistic} statistic {value:.4g} breached its control "
            f"limit {threshold:.4g}; remaining shards aborted")
        self.shard = int(shard)
        self.statistic = str(statistic)
        self.value = float(value)
        self.threshold = float(threshold)
        self.wafer_id = str(wafer_id)
        #: Merged result of the completed shard prefix (attached by
        #: :meth:`ShardExecutor.run`); ``None`` outside an engine run.
        self.partial: Any = None
        self.devices_done: int = 0
        self.devices_total: int = 0


_ABORT_LOCAL = threading.local()
_JOURNAL_LOCAL = threading.local()
_SPC_LOCAL = threading.local()


def _local_stack(local: threading.local) -> List[Any]:
    stack = getattr(local, "stack", None)
    if stack is None:
        stack = local.stack = []
    return stack


@contextmanager
def abort_scope(event: Optional[threading.Event]):
    """Install an abort event for every executor run on *this* thread.

    Deliberately thread-local (unlike the process-global ambient pool):
    each scenario/request thread installs the event it answers to, so
    one campaign's abort cannot leak into an unrelated thread's runs.
    ``None`` is accepted and is a no-op, keeping call sites branch-free.
    """
    if event is None:
        yield
        return
    stack = _local_stack(_ABORT_LOCAL)
    stack.append(event)
    try:
        yield
    finally:
        stack.pop()


def current_abort() -> Optional[threading.Event]:
    """The innermost abort event installed on this thread, if any."""
    stack = getattr(_ABORT_LOCAL, "stack", None)
    return stack[-1] if stack else None


def check_abort() -> None:
    """Raise :class:`ExecutionAborted` if this thread's abort event is set.

    Called by :meth:`ShardExecutor.map` before every shard batch and
    between inline serial shards — the granularity at which a signalled
    thread stops submitting work.
    """
    event = current_abort()
    if event is not None and event.is_set():
        raise ExecutionAborted(
            "execution aborted: the abort signal was set (a sibling "
            "scenario failed or the campaign was cancelled)")


@contextmanager
def journal_scope(journal: Any):
    """Install a shard-result journal for this thread's executor runs.

    The checkpoint/resume seam of the streaming service: while a journal
    is installed, :meth:`ShardExecutor.map` asks it for already-completed
    shard results (``lookup``) before dispatching and reports fresh ones
    back (``record``).  The journal protocol is duck-typed —
    ``begin_run(n_tasks) -> key``, ``lookup(key, index) -> (hit, value)``,
    ``record(key, index, value)`` — see
    :class:`repro.serve.checkpoint.RequestJournal` for the implementation
    that persists results to the serve checkpoint file.  ``None`` is a
    no-op.

    Correctness rests on the determinism contract: every shard result is
    a pure function of its arguments, and the *sequence* of executor
    runs a given screening makes is a pure function of its (scenario,
    seed), so ``(run index, shard index)`` names the same unit of work
    in the run that journaled it and in the run that replays it.
    """
    if journal is None:
        yield
        return
    stack = _local_stack(_JOURNAL_LOCAL)
    stack.append(journal)
    try:
        yield
    finally:
        stack.pop()


def current_journal() -> Any:
    """The innermost shard journal installed on this thread, if any."""
    stack = getattr(_JOURNAL_LOCAL, "stack", None)
    return stack[-1] if stack else None


@contextmanager
def spc_scope(monitor: Any):
    """Install an SPC monitor for this thread's executor runs.

    The wafer-level early-abort seam of the adaptive flows: while a
    monitor is installed, :meth:`ShardExecutor.map` feeds it every shard
    result — in **absolute shard order**, as a contiguous prefix,
    regardless of worker completion order or journal replay — via
    ``monitor.observe(shard_index, result)``.  A monitor that raises
    :class:`ExcursionAbort` (see :class:`repro.flows.spc.SpcMonitor`)
    stops the run's remaining shards.  ``None`` is a no-op.

    Thread-local like :func:`abort_scope`: each scenario thread monitors
    its own wafers.
    """
    if monitor is None:
        yield
        return
    stack = _local_stack(_SPC_LOCAL)
    stack.append(monitor)
    try:
        yield
    finally:
        stack.pop()


def current_monitor() -> Any:
    """The innermost SPC monitor installed on this thread, if any."""
    stack = getattr(_SPC_LOCAL, "stack", None)
    return stack[-1] if stack else None


class _MonitorFeed:
    """Deliver shard results to an SPC monitor as a contiguous prefix.

    Results may arrive out of absolute order (journal hits before fresh
    dispatches); the feed buffers them and advances a pointer, calling
    ``monitor.observe`` strictly in shard order so chart state — and the
    abort decision — is independent of the execution geometry.  The
    contiguous observed prefix is retained for the partial merge an
    :class:`ExcursionAbort` carries back.
    """

    def __init__(self, monitor: Any) -> None:
        self._monitor = monitor
        self._buffer: dict = {}
        self._next = 0
        self.observed: List[Any] = []

    def push(self, index: int, value: Any) -> None:
        self._buffer[index] = value
        while self._next in self._buffer:
            result = self._buffer.pop(self._next)
            shard = self._next
            self._next += 1
            self.observed.append(result)
            self._monitor.observe(shard, result)


def spawn_shard_seeds(seed: SeedLike,
                      n_shards: int) -> List[np.random.SeedSequence]:
    """Per-shard seed sequences, spawned by shard index.

    Shard ``i`` receives child ``i`` of ``SeedSequence(seed)`` — a pure
    function of ``(seed, i)``, never of the process or worker the shard
    lands on.  This is the whole determinism story of the scale-out layer:
    re-sharding or re-scheduling a run cannot change any shard's stream.

    The children are built statelessly from the root's ``spawn_key``
    rather than via ``root.spawn`` (which advances the root's internal
    spawn counter): calling this twice with the same ``SeedSequence``
    object must yield the same children both times.
    """
    if n_shards < 0:
        raise ValueError("n_shards must be non-negative")
    root = (seed if isinstance(seed, np.random.SeedSequence)
            else np.random.SeedSequence(seed))
    return [np.random.SeedSequence(entropy=root.entropy,
                                   spawn_key=root.spawn_key + (i,))
            for i in range(n_shards)]


def resolve_plan_seed(rng: Any, default: SeedLike) -> SeedLike:
    """Validate an engine ``rng`` argument for a plan-based run.

    Plan-based runs derive per-shard child seeds, so they need a seed (an
    integer, a :class:`~numpy.random.SeedSequence`, or ``None``), not a
    stateful generator: a shared :class:`~numpy.random.Generator` cannot
    be consumed from several processes deterministically.
    """
    if isinstance(rng, np.random.Generator):
        raise ValueError(
            "plan-based runs take an integer seed, a SeedSequence or None "
            "(per-shard child seeds are spawned from it); a shared "
            "Generator cannot be split across shards deterministically")
    if rng is None:
        return default
    return rng


@dataclass(frozen=True)
class ExecutionPlan:
    """How a wafer-scale run is executed: sharding, chunking, workers.

    Parameters
    ----------
    workers:
        Worker processes the shards are spread over.  ``1`` (the default)
        runs every shard inline in the calling process — the serial
        fallback, bit-identical to any multi-worker execution of the same
        plan.
    chunk_size:
        Devices materialised per intra-shard chunk (bounds the transient
        ``(devices, samples)`` matrices).  ``None`` keeps each engine's
        own default, which is memory-bandwidth aware: the engine divides
        :data:`repro.core.backend.CHUNK_BUDGET_BYTES` by its estimate of
        the bytes materialised per device row *under the active kernel
        backend's dtypes* (see
        :func:`repro.core.backend.auto_chunk_size`), so compacted rows
        get proportionally wider chunks.  Chunking is RNG-transparent,
        so this is purely a memory/throughput knob: it never changes
        results.
    shard_devices:
        Devices per shard — the unit of dispatch *and* of per-shard seed
        spawning.  Changing it re-partitions the seed blocks and therefore
        changes noisy draws; leave it at the default unless you know you
        need a different granularity (results remain reproducible for any
        fixed value).
    reuse_pool:
        ``True`` (the default) dispatches through a persistent
        :class:`~repro.production.pool.WorkerPool` — the ambient
        :func:`~repro.production.pool.shared_pool` if one is installed,
        else the module default pool, kept warm across runs.  ``False``
        restores the historical behaviour of spawning a fresh pool per
        dispatch and tearing it down afterwards.  Purely a scheduling
        knob: results are bit-identical either way.
    """

    workers: int = 1
    chunk_size: Optional[int] = None
    shard_devices: int = DEFAULT_SHARD_DEVICES
    reuse_pool: bool = True

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.chunk_size is not None and self.chunk_size < 1:
            raise ValueError("chunk_size must be positive")
        if self.shard_devices < 1:
            raise ValueError("shard_devices must be >= 1")

    def shard_bounds(self, n_devices: int,
                     align: int = 1) -> List[Tuple[int, int]]:
        """Device bounds of every shard of an ``n_devices`` run.

        ``align`` forces shard boundaries onto multiples of a grouping
        unit (converters per chip, so chips never straddle shards); the
        shard size is rounded *up* to the nearest multiple.
        """
        if n_devices < 0:
            raise ValueError("n_devices must be non-negative")
        if align < 1:
            raise ValueError("align must be >= 1")
        if n_devices % align != 0:
            raise ValueError(
                f"{n_devices} devices do not fill whole groups of {align}")
        size = -(-self.shard_devices // align) * align
        return list(iter_slices(n_devices, size))


class WaferEngine:
    """Protocol every shardable batch engine implements.

    ``prepare(transitions, full_scale, sample_rate)``
        Validate the batch and derive the shared per-run context (stimulus
        record, limits, partition…).  Runs once, in the parent; the
        context is shipped to every shard and must be picklable and small
        (no per-device state).
    ``run_shard(context, transitions, rng, chunk_size)``
        Run the engine on a contiguous device slice.  ``rng`` is the
        shard's own seed (plan mode) or a shared generator (legacy serial
        mode); ``chunk_size`` bounds intra-shard materialisation.
        Must depend only on its arguments — never on which process or in
        which order it runs.
    ``merge(shard_results)``
        Combine per-shard results (in shard order) into the wafer-level
        result; delegates to the result type's ``merge`` classmethod.

    The class exists for documentation and ``isinstance`` convenience;
    engines are duck-typed and need not inherit from it.
    """

    def prepare(self, transitions: np.ndarray, full_scale: float,
                sample_rate: float) -> Any:
        raise NotImplementedError

    def run_shard(self, context: Any, transitions: np.ndarray,
                  rng: Any = None, chunk_size: Optional[int] = None) -> Any:
        raise NotImplementedError

    def merge(self, shard_results: Sequence[Any]) -> Any:
        raise NotImplementedError


class ShardExecutor:
    """Run a :class:`WaferEngine` over a wafer according to a plan.

    The executor owns the one scheduling loop of the production subsystem:
    split the device axis into the plan's shards, spawn one seed per shard
    index, dispatch the shards (inline for ``workers=1``, over a process
    pool otherwise) and merge the results in shard order.  Every batch
    engine's former per-engine chunk loop now lives here, once.
    """

    def __init__(self, plan: ExecutionPlan) -> None:
        self.plan = plan

    # ------------------------------------------------------------------ #
    # Generic engine runs
    # ------------------------------------------------------------------ #

    def run(self, engine: "WaferEngine", transitions: np.ndarray,
            full_scale: float = 1.0, sample_rate: float = 1e6,
            rng: SeedLike = None,
            chunk_size: Optional[int] = None) -> Any:
        """Execute ``engine`` over the whole transition matrix.

        ``rng`` must be a seed (or ``None``), never a generator — see
        :func:`resolve_plan_seed`.  The result is bit-identical for any
        ``(workers, chunk_size)`` of the plan.

        Multi-worker dispatch is zero-copy whenever it can be: a matrix
        already backed by a registered
        :class:`~repro.production.pool.SharedWaferBuffer` ships shard
        *descriptors*; a large private matrix is staged into a transient
        segment first (one memcpy instead of one pickled copy per shard).
        """
        t = current_telemetry()
        transitions = np.asarray(transitions)
        with t.span("executor.run", engine=type(engine).__name__,
                    devices=int(transitions.shape[0]),
                    workers=self.plan.workers):
            context = engine.prepare(transitions, full_scale, sample_rate)
            bounds = self.plan.shard_bounds(transitions.shape[0])
            seeds = spawn_shard_seeds(rng, len(bounds))
            chunk = (chunk_size if chunk_size is not None
                     else self.plan.chunk_size)
            staged = None
            view = transitions
            if (self.plan.workers > 1 and len(bounds) > 1
                    and transitions.nbytes >= AUTO_SHARE_MIN_BYTES
                    and as_slice_ref(transitions) is None):
                staged = SharedWaferBuffer.from_array(transitions)
                view = staged.array
            try:
                results = self.map(
                    engine.run_shard,
                    [(context, view[lo:hi], seeds[i], chunk)
                     for i, (lo, hi) in enumerate(bounds)],
                    task_sizes=[hi - lo for lo, hi in bounds])
            except ExcursionAbort as exc:
                # Publish what the completed shard prefix measured so the
                # caller can disposition the aborted wafer.
                prefix = getattr(exc, "prefix_results", None) or []
                if exc.partial is None and prefix:
                    exc.partial = engine.merge(prefix)
                    exc.devices_done = sum(
                        hi - lo for lo, hi in bounds[:len(prefix)])
                exc.devices_total = int(transitions.shape[0])
                raise
            finally:
                if staged is not None:
                    staged.close()
            return engine.merge(results)

    # ------------------------------------------------------------------ #
    # Low-level shard dispatch
    # ------------------------------------------------------------------ #

    def map(self, func: Callable[..., Any],
            arg_tuples: Sequence[Tuple],
            task_sizes: Optional[Sequence[int]] = None) -> List[Any]:
        """Run ``func(*args)`` for every tuple, preserving input order.

        The deterministic core of the executor: results come back in task
        order no matter how the pool schedules them.  Used directly by the
        chip-mode paths, whose shard arguments carry per-chip seed slices
        rather than the generic ``(context, slice, seed, chunk)`` tuple.

        ``task_sizes`` (devices per task, same order as ``arg_tuples``)
        feeds the per-shard telemetry spans and the rolling devices/sec
        progress line; it never affects scheduling or results.

        Honours the three ambient per-thread seams: an installed
        :func:`abort_scope` event aborts before (and, serially, between)
        shards; an installed :func:`journal_scope` journal replays
        already-recorded shard results and records fresh ones, so a
        resumed run dispatches only the shards the killed run never
        finished; and an installed :func:`spc_scope` monitor observes
        every result in absolute shard order and may abort the run's
        remaining shards with :class:`ExcursionAbort`.  All default to
        no-ops.
        """
        check_abort()
        tasks = list(arg_tuples)
        monitor = current_monitor()
        feed = _MonitorFeed(monitor) if monitor is not None else None
        try:
            return self._map_journaled(func, tasks, task_sizes, feed)
        except ExcursionAbort as exc:
            if feed is not None and getattr(exc, "prefix_results",
                                            None) is None:
                exc.prefix_results = list(feed.observed)
            raise

    def _map_journaled(self, func: Callable[..., Any],
                       tasks: List[Tuple],
                       task_sizes: Optional[Sequence[int]],
                       feed: Optional["_MonitorFeed"]) -> List[Any]:
        journal = current_journal()
        observer = feed.push if feed is not None else None
        if journal is None:
            return self._map(func, tasks, task_sizes, observer=observer)
        key = journal.begin_run(len(tasks))
        results: List[Any] = [None] * len(tasks)
        pending: List[int] = []
        for i in range(len(tasks)):
            hit, value = journal.lookup(key, i)
            if hit:
                results[i] = value
                # Replayed results re-feed the charts: a resumed run
                # re-detects the excursion at the same shard it first
                # tripped on (the abort decision is part of the
                # deterministic output, not of the schedule).
                if feed is not None:
                    feed.push(i, value)
            else:
                pending.append(i)
        if pending:
            sub_sizes = (None if task_sizes is None
                         else [task_sizes[i] for i in pending])
            sub_observer = None
            if feed is not None:
                # Journal pending indices ascend, so feeding by absolute
                # index keeps the monitor's contiguous-prefix order.
                sub_observer = (
                    lambda j, value: feed.push(pending[j], value))
            fresh = self._map(func, [tasks[i] for i in pending], sub_sizes,
                              observer=sub_observer)
            for i, value in zip(pending, fresh):
                journal.record(key, i, value)
                results[i] = value
        return results

    def _map(self, func: Callable[..., Any],
             tasks: List[Tuple],
             task_sizes: Optional[Sequence[int]] = None,
             observer: Optional[Callable[[int, Any], None]] = None
             ) -> List[Any]:
        t = current_telemetry()
        n_workers = min(self.plan.workers, len(tasks))
        if n_workers <= 1:
            # Inline serial path (no pool, no descriptors).
            abort = current_abort()
            if (not t.enabled and t.progress_every <= 0 and abort is None
                    and observer is None):
                return [func(*args) for args in tasks]
            if t.enabled:
                t.count("executor.tasks", len(tasks))
            progress = ShardProgress(len(tasks), t.progress_every,
                                     task_sizes)
            metas = self._metas(tasks, task_sizes)
            results = []
            for i, args in enumerate(tasks):
                check_abort()
                if t.enabled:
                    results.append(_run_instrumented(func, args, metas[i]))
                else:
                    results.append(func(*args))
                if observer is not None:
                    # An observer that raises stops the loop here:
                    # remaining inline shards never run.
                    observer(i, results[-1])
                if progress.active:
                    progress.step(i)
            return results

        pool, transient = self._acquire_pool(n_workers)
        try:
            if not t.enabled and t.progress_every <= 0:
                # Uninstrumented fast path: exactly the seed behaviour
                # (observer=None keeps it on the ordered-map path).
                return pool.dispatch(func, tasks, observer=observer)
            if t.enabled:
                t.count("executor.tasks", len(tasks))
            progress = ShardProgress(len(tasks), t.progress_every,
                                     task_sizes)
            return pool.dispatch(func, tasks,
                                 metas=self._metas(tasks, task_sizes),
                                 progress=progress,
                                 observer=observer)
        finally:
            if transient:
                pool.close()

    @staticmethod
    def _metas(tasks: Sequence[Tuple],
               task_sizes: Optional[Sequence[int]]) -> List[dict]:
        metas = []
        for i in range(len(tasks)):
            meta = {"shard": i}
            if task_sizes is not None:
                meta["devices"] = int(task_sizes[i])
            metas.append(meta)
        return metas

    def _acquire_pool(self, n_workers: int) -> Tuple[WorkerPool, bool]:
        """The pool this dispatch runs on, and whether to close it after.

        ``plan.reuse_pool`` selects the persistent path: the ambient
        :func:`~repro.production.pool.shared_pool` if one is installed
        (e.g. by a running campaign), else the module default pool —
        both left open for the next dispatch.  With ``reuse_pool=False``
        a transient pool is spawned for this dispatch alone (the
        pre-persistent-pool behaviour, kept for cold-start benchmarking
        and as an isolation escape hatch).
        """
        if not self.plan.reuse_pool:
            return WorkerPool(n_workers), True
        ambient = current_pool()
        if ambient is not None and not ambient.closed:
            return ambient, False
        return get_default_pool(self.plan.workers), False
