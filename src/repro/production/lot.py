"""Wafer and lot models: device *matrices* instead of device objects.

A production line does not think in single converters: it screens wafers of
thousands of dies grouped into lots.  At that scale, materialising one
Python converter object per die is the bottleneck, so a :class:`Wafer`
stores the whole batch as parameter matrices — one row of transition
voltages per die — drawn in a single vectorised call to the architecture's
transfer backend (:mod:`repro.adc.backends`).  The default flash backend
carries exactly the statistics the paper derives for the resistor ladder
(sigma 0.16–0.21 LSB, pairwise correlation ``-1/(N-1)``); the SAR and
pipeline backends realise their architectures' characteristic error
signatures (binary-weight mismatch, inter-stage gain errors) the same way.
Any individual die can still be materialised as a converter object when the
scalar engine needs one, with a transfer curve bit-identical to the matrix
row.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Union

import numpy as np

from repro.adc.backends import ARCHITECTURES, TransferBackend, make_backend
from repro.adc.ideal import TableADC
from repro.adc.population import DevicePopulation
from repro.adc.transfer import (
    TransferFunction,
    batch_max_dnl,
    batch_max_inl,
)
from repro.production.execution import DEFAULT_SHARD_DEVICES, iter_slices

__all__ = ["WaferSpec", "Wafer", "Lot"]

RngLike = Union[int, np.random.Generator, None]

SeedLike = Union[int, np.integer, np.random.SeedSequence]


@dataclass(frozen=True)
class WaferSpec:
    """Process and geometry parameters shared by every die on a wafer.

    Parameters
    ----------
    n_bits:
        Converter resolution.
    sigma_code_width_lsb:
        Population standard deviation of the inner code widths, in LSB
        (the paper's worst case is 0.21 LSB).  Flash architecture only.
    n_devices:
        Dies per wafer.
    rho:
        Pairwise code-width correlation; ``None`` selects the ladder value
        ``-1/(N-1)`` of Equation (10).  Flash architecture only.
    full_scale:
        Full-scale range in volts.
    sample_rate:
        Sample frequency of every die in Hz.
    architecture:
        Converter architecture realised by the wafer's dies: ``"flash"``
        (default), ``"sar"`` or ``"pipeline"``; selects the vectorised
        transfer backend (:mod:`repro.adc.backends`) the draw uses.
    unit_cap_sigma_rel, comparator_offset_sigma_lsb:
        SAR mismatch parameters (unit-capacitor relative sigma, per-die
        comparator offset sigma in LSB).
    gain_error_sigma, threshold_sigma_lsb:
        Pipeline mismatch parameters (relative stage-gain sigma, sub-ADC
        threshold sigma in LSB).
    """

    n_bits: int = 6
    sigma_code_width_lsb: float = 0.21
    n_devices: int = 2500
    rho: Optional[float] = None
    full_scale: float = 1.0
    sample_rate: float = 1e6
    architecture: str = "flash"
    unit_cap_sigma_rel: float = 0.06
    comparator_offset_sigma_lsb: float = 0.0
    gain_error_sigma: float = 0.03
    threshold_sigma_lsb: float = 0.5

    def __post_init__(self) -> None:
        if self.n_bits < 2:
            raise ValueError("n_bits must be >= 2")
        if self.n_devices < 1:
            raise ValueError("n_devices must be >= 1")
        if self.sigma_code_width_lsb < 0:
            raise ValueError("sigma_code_width_lsb must be non-negative")
        if self.full_scale <= 0 or self.sample_rate <= 0:
            raise ValueError("full_scale and sample_rate must be positive")
        if self.architecture not in ARCHITECTURES:
            raise ValueError(
                f"unknown architecture {self.architecture!r}; "
                f"expected one of {ARCHITECTURES}")

    def backend(self) -> TransferBackend:
        """The vectorised transfer backend realising this spec's dies."""
        return make_backend(
            self.architecture, self.n_bits, self.full_scale,
            sigma_code_width_lsb=self.sigma_code_width_lsb, rho=self.rho,
            unit_cap_sigma_rel=self.unit_cap_sigma_rel,
            comparator_offset_sigma_lsb=self.comparator_offset_sigma_lsb,
            gain_error_sigma=self.gain_error_sigma,
            threshold_sigma_lsb=self.threshold_sigma_lsb)

    @property
    def n_codes(self) -> int:
        """Number of output codes per die."""
        return 1 << self.n_bits

    @property
    def n_inner_codes(self) -> int:
        """Number of inner code widths per die."""
        return self.n_codes - 2

    @property
    def lsb(self) -> float:
        """Ideal LSB size in volts."""
        return self.full_scale / self.n_codes


class Wafer:
    """One wafer of converters, held as a transition-voltage matrix.

    Parameters
    ----------
    spec:
        The shared process/geometry parameters.
    transitions:
        ``(n_devices, 2**n_bits - 1)`` matrix of transition voltages; row
        ``i`` is die ``i``'s static transfer curve.
    wafer_id:
        Identifier used in screening reports.
    """

    def __init__(self, spec: WaferSpec, transitions: np.ndarray,
                 wafer_id: str = "W0") -> None:
        transitions = np.asarray(transitions, dtype=float)
        expected = (spec.n_devices, spec.n_codes - 1)
        if transitions.shape != expected:
            raise ValueError(
                f"expected a transition matrix of shape {expected}, "
                f"got {transitions.shape}")
        self.spec = spec
        self.transitions = transitions
        self.wafer_id = str(wafer_id)

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #

    @classmethod
    def draw(cls, spec: WaferSpec, rng: RngLike = None,
             wafer_id: str = "W0") -> "Wafer":
        """Draw a wafer's worth of dies in one vectorised call.

        The transition matrix of all dies comes from a single call into
        the spec's transfer backend (:mod:`repro.adc.backends`), so the
        per-wafer cost is one RNG stream regardless of the die count —
        this is what makes million-device Monte-Carlo lots tractable for
        every supported architecture, not just flash.
        """
        transitions = spec.backend().draw_transitions(spec.n_devices,
                                                      rng=rng)
        return cls(spec, transitions, wafer_id=wafer_id)

    @classmethod
    def draw_sharded(cls, spec: WaferSpec, seed: SeedLike,
                     wafer_id: str = "W0",
                     block_devices: int = DEFAULT_SHARD_DEVICES) -> "Wafer":
        """Draw a wafer in fixed seed blocks, sliceable without the whole.

        Device block ``b`` (rows ``b*block_devices`` onward) is drawn from
        child ``b`` of ``SeedSequence(seed)`` — a pure function of
        ``(seed, b)``.  The payoff is :meth:`draw_slice`: any worker can
        reproduce exactly its rows of this wafer without the full
        parameter matrix ever existing in its address space, which is how
        the scale-out execution layer feeds shards on machines that could
        never hold a million-device wafer.  The blocked draw is a
        different (equally valid) realisation than :meth:`draw` for the
        same seed.
        """
        transitions = cls.draw_slice(spec, 0, spec.n_devices, seed,
                                     block_devices=block_devices)
        return cls(spec, transitions, wafer_id=wafer_id)

    @classmethod
    def draw_slice(cls, spec: WaferSpec, lo: int, hi: int, seed: SeedLike,
                   block_devices: int = DEFAULT_SHARD_DEVICES) -> np.ndarray:
        """Transition rows ``lo:hi`` of the sharded draw, and only those.

        Bit-identical to ``draw_sharded(spec, seed).transitions[lo:hi]``
        for any slice bounds: only the seed blocks overlapping the slice
        are drawn (at most ``block_devices - 1`` rows of waste at each
        edge), so the memory cost is that of the slice, not the wafer.
        """
        if isinstance(seed, np.random.Generator) or seed is None:
            raise ValueError(
                "sharded draws need a seed (or SeedSequence), not a "
                "generator, so any slice can be re-derived independently")
        if not 0 <= lo <= hi <= spec.n_devices:
            raise ValueError(
                f"slice [{lo}, {hi}) is outside [0, {spec.n_devices})")
        if block_devices < 1:
            raise ValueError("block_devices must be >= 1")
        root = (seed if isinstance(seed, np.random.SeedSequence)
                else np.random.SeedSequence(seed))
        backend = spec.backend()
        rows = []
        for block_lo, block_hi in iter_slices(spec.n_devices, block_devices):
            if block_hi <= lo or block_lo >= hi:
                continue
            # Child b of the root sequence, derived by index so a worker
            # needs neither the other children nor the other blocks.
            child = np.random.SeedSequence(
                entropy=root.entropy,
                spawn_key=root.spawn_key + (block_lo // block_devices,))
            block = backend.draw_transitions(
                block_hi - block_lo, rng=np.random.default_rng(child))
            rows.append(block[max(lo - block_lo, 0):
                              min(hi, block_hi) - block_lo])
        if not rows:
            return np.empty((0, spec.n_codes - 1))
        return np.vstack(rows)

    @classmethod
    def from_population(cls, population: DevicePopulation,
                        wafer_id: str = "W0") -> "Wafer":
        """Wrap an existing :class:`DevicePopulation` as a wafer.

        The transition matrix is taken from
        :meth:`~repro.adc.population.DevicePopulation.transition_matrix`,
        so batch decisions on the wafer agree bit-for-bit with scalar runs
        over the population's device objects.
        """
        pop_spec = population.spec
        # The Gaussian population architecture is the statistical model of
        # the flash ladder; the wafer only records the matrix's provenance.
        architecture = (pop_spec.architecture
                        if pop_spec.architecture in ARCHITECTURES
                        else "flash")
        spec = WaferSpec(
            n_bits=pop_spec.n_bits,
            sigma_code_width_lsb=pop_spec.sigma_code_width_lsb,
            n_devices=pop_spec.size,
            full_scale=pop_spec.full_scale,
            sample_rate=pop_spec.sample_rate,
            architecture=architecture,
            unit_cap_sigma_rel=pop_spec.unit_cap_sigma_rel,
            comparator_offset_sigma_lsb=pop_spec.comparator_offset_sigma_lsb,
            gain_error_sigma=pop_spec.gain_error_sigma,
            threshold_sigma_lsb=pop_spec.threshold_sigma_lsb)
        return cls(spec, population.transition_matrix(), wafer_id=wafer_id)

    def to_shared(self):
        """Re-home this wafer's matrix into a shared-memory segment.

        Returns ``(buffer, wafer)`` — see
        :func:`repro.production.pool.share_wafer`.  Every multi-worker
        dispatch that slices the returned wafer then ships a zero-copy
        descriptor instead of pickling matrix rows; the caller owns the
        buffer and must close it after the last such dispatch.
        """
        from repro.production.pool import share_wafer

        return share_wafer(self)

    # ------------------------------------------------------------------ #
    # Device access (scalar interoperability)
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return self.spec.n_devices

    def device(self, index: int) -> TableADC:
        """Materialise die ``index`` as a converter object.

        The returned device wraps this wafer's transition row directly, so
        scalar-engine runs on it see exactly the transfer curve the batch
        engine decides on.
        """
        if not -len(self) <= index < len(self):
            raise IndexError(f"die index {index} out of range")
        index = index % len(self)
        tf = TransferFunction(n_bits=self.spec.n_bits,
                              transitions=self.transitions[index],
                              full_scale=self.spec.full_scale)
        return TableADC(tf, sample_rate=self.spec.sample_rate,
                        name=f"{self.wafer_id} die {index}")

    def devices(self) -> Iterator[TableADC]:
        """Iterate over all dies as converter objects (scalar path)."""
        for i in range(len(self)):
            yield self.device(i)

    # ------------------------------------------------------------------ #
    # Bulk true linearity (the reference the BIST is scored against)
    # ------------------------------------------------------------------ #

    def max_dnl_per_device(self) -> np.ndarray:
        """Largest end-point |DNL| of each die, in LSB."""
        return batch_max_dnl(self.transitions)

    def max_inl_per_device(self) -> np.ndarray:
        """Largest end-point |INL| of each die, in LSB."""
        return batch_max_inl(self.transitions)

    def good_mask(self, dnl_spec_lsb: float,
                  inl_spec_lsb: Optional[float] = None) -> np.ndarray:
        """Boolean mask of dies truly meeting the specification.

        The matrix analogue of :func:`repro.core.engine.true_goodness`:
        the same end-point criterion, evaluated for every die at once.
        """
        good = self.max_dnl_per_device() <= dnl_spec_lsb
        if inl_spec_lsb is not None:
            good &= self.max_inl_per_device() <= inl_spec_lsb
        return good

    def yield_fraction(self, dnl_spec_lsb: float,
                       inl_spec_lsb: Optional[float] = None) -> float:
        """Fraction of dies truly meeting the specification."""
        return float(self.good_mask(dnl_spec_lsb, inl_spec_lsb).mean())


class Lot:
    """A production lot: an ordered group of wafers screened together."""

    def __init__(self, wafers: List[Wafer], lot_id: str = "LOT-0") -> None:
        if not wafers:
            raise ValueError("a lot needs at least one wafer")
        spec = wafers[0].spec
        for wafer in wafers[1:]:
            if wafer.spec != spec:
                raise ValueError("all wafers of a lot must share one spec")
        self.wafers = list(wafers)
        self.lot_id = str(lot_id)

    @classmethod
    def draw(cls, spec: WaferSpec, n_wafers: int, seed: Optional[int] = 0,
             lot_id: str = "LOT-0") -> "Lot":
        """Draw a reproducible lot of ``n_wafers`` wafers.

        Wafer ``i`` uses a child seed derived from ``seed`` (the same
        scheme :class:`~repro.adc.population.DevicePopulation` uses for its
        devices), so a lot is fully reproducible from one integer.
        """
        if n_wafers < 1:
            raise ValueError("n_wafers must be >= 1")
        rng = np.random.default_rng(seed)
        wafer_seeds = rng.integers(0, 2 ** 31 - 1, size=n_wafers)
        wafers = [Wafer.draw(spec, rng=int(wafer_seeds[i]),
                             wafer_id=f"{lot_id}/W{i}")
                  for i in range(n_wafers)]
        return cls(wafers, lot_id=lot_id)

    @property
    def spec(self) -> WaferSpec:
        """The spec shared by every wafer of the lot."""
        return self.wafers[0].spec

    @property
    def n_devices(self) -> int:
        """Total dies across all wafers."""
        return sum(len(w) for w in self.wafers)

    def __len__(self) -> int:
        return len(self.wafers)

    def __iter__(self) -> Iterator[Wafer]:
        return iter(self.wafers)
