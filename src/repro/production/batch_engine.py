"""Vectorised BIST over whole wafers: one array program, no device loop.

:class:`BatchBistEngine` runs the paper's complete BIST measurement —
ramp stimulus, acquisition, deglitching, MSB functionality check and the
LSB processing block's DNL/INL decisions — across the *device axis* as pure
NumPy array operations, reproducing the scalar
:class:`~repro.core.engine.BistEngine` accept/reject decisions bit for bit.

Two execution paths are selected automatically:

**Event path** (noise-free, no deglitch filter — the paper's nominal
    Table 1/2 configuration).  With a monotone shared ramp the full
    ``(devices, samples)`` code matrix never needs to exist: the sample
    index at which each transition voltage is crossed is found with one
    batched :func:`numpy.searchsorted` of all transition levels into the
    ramp, and every downstream quantity — LSB edges (transitions crossed an
    odd number of times per sample), per-code sample counts, MSB reference
    counter — is derived from those ``O(devices x codes)`` crossing events.
    This is what makes the engine orders of magnitude faster than the
    scalar loop and million-device Monte-Carlo runs feasible.

**Stream path** (transition noise, stimulus noise or a deglitch filter
    configured).  The acquisition is materialised chunk-wise as a 2-D
    quantisation of the shared ramp; the LSB waveforms are extracted,
    deglitched and processed as batched array ops, consuming the shared
    random generator in exactly the order the scalar per-device loop does,
    so noisy runs also match the scalar engine decision for decision.

Both paths feed the same count-limit kernel
(:func:`repro.core.decision.decide_counts`) the scalar LSB processor uses,
and the stream path's quantisation and MSB reference counter are the shared
device-axis kernel of :mod:`repro.core.kernel` — the same array program the
scalar :class:`~repro.core.msb_checker.MsbChecker` runs with one row.

:func:`chip_grouping` and :meth:`BatchBistEngine.run_chips` extend the batch
to multi-converter ICs: consecutive dies share one chip, the chip passes
when every converter on it passes, and the wall-clock test time is that of
a single shared ramp — the paper's parallel-test argument, evaluated for a
whole lot at once.

The engine implements the :class:`~repro.production.execution.WaferEngine`
protocol (``prepare`` → ``run_shard`` → ``merge``), so any run can be
scaled out over worker processes with an
:class:`~repro.production.execution.ExecutionPlan` — bit-identical for any
``(workers, chunk_size)`` thanks to per-shard-index seed spawning.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple, Union

import numpy as np

from repro.adc.ideal import IdealADC
from repro.adc.population import DevicePopulation
from repro.adc.transfer import batch_max_dnl, batch_max_inl
from repro.core.decision import decide_counts
from repro.core.deglitch import DeglitchFilter
from repro.core.engine import BistConfig, BistEngine, PopulationBistResult
from repro.core.backend import (
    auto_chunk_size,
    backend_scope,
    current_backend,
    resolve_backend_name,
)
from repro.core.kernel import (
    batch_msb_reference,
    batch_quantise_rows,
    packed_crossing_events,
    shared_crossing_indices,
)
from repro.core.limits import CountLimits
from repro.production.execution import (
    ExecutionPlan,
    ShardExecutor,
    iter_slices,
    resolve_plan_seed,
)
from repro.production.lot import Wafer
from repro.telemetry.core import current_telemetry

__all__ = ["BatchLsbProcessor", "BatchLsbResult", "BatchBistResult",
           "BatchBistEngine", "BatchChipBistResult", "batch_deglitch",
           "chip_grouping", "chip_noise_seeds"]

RngLike = Union[int, np.random.Generator, None]


def _event_chunk_size(n_transitions: int, n_samples: int) -> int:
    """Default chunk on the event path: only O(codes) state per device.

    The working set per device is the crossing-index row plus a handful of
    same-shaped intermediates (masks, diffs, packed events), so the row
    estimate is four index-rows wide under the active backend's dtype.
    """
    backend = current_backend()
    row = 4 * max(n_transitions, 1) * backend.index_dtype(n_samples).itemsize
    return auto_chunk_size(row)


def _stream_chunk_size(n_transitions: int, n_samples: int) -> int:
    """Default chunk on the stream path: full per-device sample rows.

    Each device materialises a float64 noise/voltage row, a code row in
    the backend's code dtype, and a few int8/bool bit streams.
    """
    backend = current_backend()
    row = n_samples * (16 + backend.code_dtype(n_transitions + 1).itemsize
                       + 4)
    return auto_chunk_size(max(row, 1))


@dataclass
class _ChunkOutcome:
    """Per-device aggregate decisions of one processed chunk."""

    dnl_passed: np.ndarray
    inl_passed: np.ndarray
    transitions_ok: np.ndarray
    msb_passed: np.ndarray
    n_transitions: np.ndarray
    measured_max_dnl_lsb: np.ndarray

    @classmethod
    def empty(cls, n_devices: int) -> "_ChunkOutcome":
        """All-fail scaffold to be filled per device group."""
        return cls(dnl_passed=np.zeros(n_devices, dtype=bool),
                   inl_passed=np.zeros(n_devices, dtype=bool),
                   transitions_ok=np.zeros(n_devices, dtype=bool),
                   msb_passed=np.zeros(n_devices, dtype=bool),
                   n_transitions=np.zeros(n_devices, dtype=np.int64),
                   measured_max_dnl_lsb=np.full(n_devices, np.nan))

    @classmethod
    def from_lsb(cls, lsb_res: "BatchLsbResult",
                 msb_passed: np.ndarray) -> "_ChunkOutcome":
        """Aggregate a full LSB-block result plus the MSB decisions."""
        return cls(dnl_passed=lsb_res.dnl_passed,
                   inl_passed=lsb_res.inl_passed,
                   transitions_ok=lsb_res.transitions_ok,
                   msb_passed=np.asarray(msb_passed, dtype=bool),
                   n_transitions=lsb_res.n_transitions,
                   measured_max_dnl_lsb=lsb_res.measured_max_dnl_lsb())

    def scatter(self, sub: "_ChunkOutcome", mask: np.ndarray) -> None:
        """Write a sub-batch outcome into the rows selected by ``mask``."""
        self.dnl_passed[mask] = sub.dnl_passed
        self.inl_passed[mask] = sub.inl_passed
        self.transitions_ok[mask] = sub.transitions_ok
        self.msb_passed[mask] = sub.msb_passed
        self.n_transitions[mask] = sub.n_transitions
        self.measured_max_dnl_lsb[mask] = sub.measured_max_dnl_lsb


@dataclass(frozen=True)
class _BistShardContext:
    """Per-run state shared by every shard of one batched BIST run.

    Computed once by :meth:`BatchBistEngine.prepare` in the parent process
    and shipped (pickled) to each shard: the shared stimulus record, the
    execution-path selection and the resolved kernel-backend name (so
    worker processes enter the identical backend scope).  Holds no
    per-device state.
    """

    ramp_voltages: np.ndarray
    n_samples: int
    lsb_volts: float
    event_path: bool
    backend: str = "numpy"


def batch_deglitch(streams: np.ndarray,
                   filt: DeglitchFilter) -> np.ndarray:
    """Apply a :class:`DeglitchFilter` to every row of a 0/1 stream matrix.

    Row ``d`` of the result equals ``filt.apply(streams[d])`` exactly; both
    modes are pure array programs over the full (devices, samples) matrix.
    The majority mode is a batched sliding-window vote.  The hysteresis
    mode exploits that the filter state can only change at the ``depth``-th
    sample of a run of equal values (a shorter run never flips it, a longer
    run has already flipped it), so the output at any sample is the value
    of the most recent such *trigger* sample — a pair of running maxima
    over the sample axis, no per-sample state machine.
    """
    streams = np.asarray(streams)
    if streams.ndim != 2:
        raise ValueError("streams must be a (devices, samples) matrix")
    if current_backend().jit:
        from repro.core import kernel_jit
        return kernel_jit.batch_deglitch_jit(streams, filt.depth, filt.mode)
    values = (streams != 0).astype(np.int8)
    if filt.depth == 0 or values.shape[1] == 0:
        return values
    if filt.mode == "majority":
        window = 2 * filt.depth + 1
        padded = np.pad(values, ((0, 0), (filt.depth, filt.depth)),
                        mode="edge")
        cumulative = np.concatenate(
            (np.zeros((values.shape[0], 1), dtype=np.int64),
             np.cumsum(padded, axis=1)), axis=1)
        sums = cumulative[:, window:] - cumulative[:, :-window]
        return (sums * 2 > window).astype(np.int8)

    n_samples = values.shape[1]
    idx = np.arange(n_samples)
    # Start index of the run each sample belongs to, as a running maximum
    # over the run-start positions seen so far.
    is_start = np.empty(values.shape, dtype=bool)
    is_start[:, 0] = True
    is_start[:, 1:] = values[:, 1:] != values[:, :-1]
    run_start = np.maximum.accumulate(np.where(is_start, idx, 0), axis=1)
    # A run reaches the acceptance length at its depth-th sample; the
    # filter output equals the value at the latest such trigger, or the
    # initial value when no run has qualified yet.  (Triggers whose value
    # already equals the state are harmless: the gathered value is the
    # state itself.)
    trigger = (idx - run_start) == (filt.depth - 1)
    last_trigger = np.maximum.accumulate(np.where(trigger, idx, -1), axis=1)
    gathered = np.take_along_axis(values, np.maximum(last_trigger, 0),
                                  axis=1)
    return np.where(last_trigger >= 0, gathered,
                    values[:, :1]).astype(np.int8)


@dataclass
class BatchLsbResult:
    """Outcome of the LSB processing block over a batch of LSB streams.

    The per-code arrays are left-packed per device and padded along the
    last axis; ``valid`` marks the real entries.  Per-device aggregates
    mirror the scalar :class:`~repro.core.lsb_processor.LsbProcessorResult`
    properties.
    """

    counts: np.ndarray
    counter_readings: np.ndarray
    dnl_pass_per_code: np.ndarray
    inl_deviation_counts: np.ndarray
    inl_pass_per_code: np.ndarray
    valid: np.ndarray
    n_counts: np.ndarray
    n_transitions: np.ndarray
    expected_transitions: Optional[int]
    limits: CountLimits

    @property
    def n_devices(self) -> int:
        """Number of devices in the batch."""
        return int(self.n_transitions.size)

    @property
    def dnl_passed(self) -> np.ndarray:
        """Per-device DNL decision (False when no code was measured)."""
        return self.dnl_pass_per_code.all(axis=1) & (self.n_counts > 0)

    @property
    def inl_passed(self) -> np.ndarray:
        """Per-device INL decision (False when no code was measured)."""
        return self.inl_pass_per_code.all(axis=1) & (self.n_counts > 0)

    @property
    def transitions_ok(self) -> np.ndarray:
        """Per-device check of the observed LSB transition count."""
        if self.expected_transitions is None:
            return np.ones(self.n_devices, dtype=bool)
        return self.n_transitions == self.expected_transitions

    @property
    def passed(self) -> np.ndarray:
        """Per-device static-linearity decision of the LSB block."""
        return self.dnl_passed & self.inl_passed & self.transitions_ok

    def measured_max_dnl_lsb(self) -> np.ndarray:
        """Per-device largest |DNL| as reconstructed from the counters.

        The quantity the production line bins accepted devices on; NaN for
        devices without measured codes.  The per-device width sum runs
        over the *valid* entries only (a sequential ``bincount`` in
        device-major order), never over the padding columns: the padded
        width depends on how a run was chunked, and a summation whose
        partitioning followed it would drift by an ulp between chunk
        layouts — breaking the execution layer's bit-invariance.
        """
        widths = np.where(self.valid,
                          self.counter_readings * self.limits.delta_s_lsb,
                          0.0)
        dev_idx, pos = np.nonzero(self.valid)
        sums = np.bincount(dev_idx, weights=widths[dev_idx, pos],
                           minlength=self.n_devices)
        n = np.maximum(self.n_counts, 1)
        mean = sums / n
        mean = np.where(mean == 0.0, 1.0, mean)
        dnl = np.abs(widths / mean[:, None] - 1.0)
        worst = np.where(self.valid, dnl, 0.0).max(axis=1, initial=0.0)
        return np.where(self.n_counts > 0, worst, np.nan)


def _packed_counts(edge_dev: np.ndarray, edge_t: np.ndarray,
                   n_edges: np.ndarray) -> Tuple[np.ndarray, np.ndarray,
                                                 np.ndarray]:
    """Per-code counts from flat edge events, left-packed per device.

    ``edge_dev``/``edge_t`` must be sorted by device then sample index, as
    produced by row-major ``nonzero`` or a sorted-key reduction; counts of
    device ``d`` are the gaps between its successive edges, matching the
    scalar ``np.diff(edges)``.
    """
    n_devices = n_edges.size
    n_counts = np.maximum(n_edges - 1, 0)
    width = int(n_counts.max()) if n_devices else 0
    counts = np.zeros((n_devices, width), dtype=np.int64)
    valid = np.zeros((n_devices, width), dtype=bool)
    if edge_t.size >= 2:
        same = edge_dev[1:] == edge_dev[:-1]
        flat_dev = edge_dev[1:][same]
        flat_counts = (edge_t[1:] - edge_t[:-1])[same]
        starts = np.concatenate(([0], np.cumsum(n_counts)[:-1]))
        pos = np.arange(flat_counts.size) - np.repeat(starts, n_counts)
        counts[flat_dev, pos] = flat_counts
        valid[flat_dev, pos] = True
    return counts, valid, n_counts


class BatchLsbProcessor:
    """Batched counterpart of :class:`~repro.core.lsb_processor.LsbProcessor`.

    Processes a whole matrix of LSB sample streams at once; row ``d`` of
    every per-code array matches what the scalar block produces for stream
    ``d``, decision for decision.
    """

    def __init__(self, limits: CountLimits,
                 deglitch: Optional[DeglitchFilter] = None,
                 counter_saturate: bool = True) -> None:
        self.limits = limits
        self.deglitch = deglitch
        self.counter_saturate = counter_saturate

    def process(self, lsb_streams: np.ndarray,
                n_bits: Optional[int] = None) -> BatchLsbResult:
        """Run the block over a ``(devices, samples)`` 0/1 stream matrix."""
        streams = (np.asarray(lsb_streams) != 0).astype(np.int8)
        if streams.ndim != 2:
            raise ValueError("lsb_streams must be a (devices, samples) "
                             "matrix")
        if self.deglitch is not None:
            streams = batch_deglitch(streams, self.deglitch)

        change = np.diff(streams, axis=1) != 0
        edge_dev, edge_col = np.nonzero(change)
        edge_t = edge_col + 1
        n_edges = np.bincount(edge_dev, minlength=streams.shape[0])
        return self._from_edges(edge_dev, edge_t, n_edges, n_bits=n_bits)

    def _from_edges(self, edge_dev: np.ndarray, edge_t: np.ndarray,
                    n_edges: np.ndarray,
                    n_bits: Optional[int] = None) -> BatchLsbResult:
        """Build the result from flat (device, sample-index) edge events."""
        counts, valid, n_counts = _packed_counts(edge_dev, edge_t, n_edges)
        decision = decide_counts(counts, self.limits,
                                 saturate=self.counter_saturate,
                                 valid=valid)
        expected = ((1 << n_bits) - 1) if n_bits is not None else None
        return BatchLsbResult(
            counts=counts,
            counter_readings=decision.readings,
            dnl_pass_per_code=decision.dnl_pass,
            inl_deviation_counts=decision.inl_deviation,
            inl_pass_per_code=decision.inl_pass,
            valid=valid,
            n_counts=n_counts,
            n_transitions=n_edges.astype(np.int64),
            expected_transitions=expected,
            limits=self.limits)


@dataclass
class BatchBistResult:
    """Per-device outcome of one batched BIST run.

    All arrays have one entry per device; ``passed`` is the accept/reject
    vector matching :attr:`repro.core.engine.BistResult.passed` of the
    scalar engine run on each device individually.
    """

    n_devices: int
    passed: np.ndarray
    lsb_passed: np.ndarray
    dnl_passed: np.ndarray
    inl_passed: np.ndarray
    transitions_ok: np.ndarray
    msb_passed: np.ndarray
    n_transitions: np.ndarray
    measured_max_dnl_lsb: np.ndarray
    samples_taken: int
    limits: CountLimits

    @property
    def n_accepted(self) -> int:
        """Number of devices the BIST accepted."""
        return int(np.count_nonzero(self.passed))

    @property
    def n_rejected(self) -> int:
        """Number of devices the BIST rejected."""
        return self.n_devices - self.n_accepted

    @property
    def accept_fraction(self) -> float:
        """Fraction of devices accepted."""
        return self.n_accepted / self.n_devices if self.n_devices else 0.0

    @property
    def off_chip_bits_transferred(self) -> int:
        """Pass/fail flags read out for the whole batch (one per device)."""
        return self.n_devices

    @classmethod
    def merge(cls, shards: "Sequence[BatchBistResult]") -> "BatchBistResult":
        """Concatenate per-shard results (in shard order) into one batch.

        The shards must come from one run: same limits and acquisition
        length.  This is the ``merge`` leg of the
        :class:`~repro.production.execution.WaferEngine` protocol.
        """
        shards = list(shards)
        if not shards:
            raise ValueError("cannot merge an empty shard list")
        if any(s.samples_taken != shards[0].samples_taken for s in shards):
            raise ValueError("shards disagree on the acquisition length")
        return cls(
            n_devices=sum(s.n_devices for s in shards),
            passed=np.concatenate([s.passed for s in shards]),
            lsb_passed=np.concatenate([s.lsb_passed for s in shards]),
            dnl_passed=np.concatenate([s.dnl_passed for s in shards]),
            inl_passed=np.concatenate([s.inl_passed for s in shards]),
            transitions_ok=np.concatenate([s.transitions_ok
                                           for s in shards]),
            msb_passed=np.concatenate([s.msb_passed for s in shards]),
            n_transitions=np.concatenate([s.n_transitions for s in shards]),
            measured_max_dnl_lsb=np.concatenate(
                [s.measured_max_dnl_lsb for s in shards]),
            samples_taken=shards[0].samples_taken,
            limits=shards[0].limits)


def chip_grouping(passed: np.ndarray,
                  converters_per_chip: int) -> Tuple[np.ndarray, np.ndarray]:
    """Group per-converter decisions into per-chip verdicts and registers.

    Converter ``i`` sits on chip ``i // converters_per_chip`` (dies are
    assembled in wafer order).  Returns the per-chip pass vector (a chip
    passes when every converter on it passed) and the packed result
    registers (bit ``j`` set = converter ``j`` of the chip passed), exactly
    the read-out format of
    :class:`~repro.core.controller.MultiAdcBistController`.
    """
    passed = np.asarray(passed, dtype=bool)
    if passed.ndim != 1:
        raise ValueError("passed must be a per-converter vector")
    if not 1 <= converters_per_chip <= 63:
        # The registers are packed into int64; bit 63 would flip the sign.
        raise ValueError("converters_per_chip must be within [1, 63]")
    if passed.size % converters_per_chip != 0:
        raise ValueError(
            f"{passed.size} converters do not fill whole chips of "
            f"{converters_per_chip}")
    grouped = passed.reshape(-1, converters_per_chip)
    registers = (grouped.astype(np.int64)
                 << np.arange(converters_per_chip)).sum(axis=1)
    return grouped.all(axis=1), registers


def chip_noise_seeds(seed: Union[int, None], n_chips: int) -> np.ndarray:
    """Per-chip acquisition seeds of a seeded multi-chip screening run.

    Chip ``c`` of a noisy :meth:`BatchBistEngine.run_chips` batch draws its
    per-converter noise from the integer seed this function derives — the
    same child-collapsing scheme
    :meth:`repro.core.controller.MultiAdcBistController.run_lot` uses, so
    ``MultiAdcBistController.run_chip(chip_devices, rng=seeds[c])``
    reproduces the batch decisions chip for chip.  Exposed so equivalence
    tests (and anyone replaying a single chip) can derive the identical
    seeds.
    """
    if n_chips < 1:
        raise ValueError("n_chips must be positive")
    sequence = np.random.SeedSequence(seed)
    return np.array([int(child.generate_state(1)[0])
                     for child in sequence.spawn(n_chips)], dtype=np.int64)


def _validated_chip_seeds(transitions: np.ndarray, converters_per_chip: int,
                          rng: Union[int, None]) -> np.ndarray:
    """Validate a chip-mode batch and derive its per-chip noise seeds.

    Shared by the full- and partial-BIST noisy chip paths: checks the chip
    geometry and returns :func:`chip_noise_seeds` for the whole batch.
    """
    if not 1 <= converters_per_chip <= 63:
        raise ValueError("converters_per_chip must be within [1, 63]")
    n_devices = transitions.shape[0]
    if n_devices % converters_per_chip != 0:
        raise ValueError(
            f"{n_devices} converters do not fill whole chips of "
            f"{converters_per_chip}")
    return chip_noise_seeds(int(rng) if rng is not None else None,
                            n_devices // converters_per_chip)


def _chip_noise_rows(seeds: np.ndarray, converters_per_chip: int,
                     sigma: float, n_samples: int) -> np.ndarray:
    """Per-converter acquisition-noise rows for a run of chips.

    Converter ``j`` of chip ``c`` draws its row from child ``j`` of
    ``SeedSequence(seeds[c])`` — the controller-parity spawning scheme the
    regression vectors pin, stated once and shared by the full- and
    partial-BIST noisy chip modes so the two can never silently diverge.
    """
    noise = np.empty((seeds.size * converters_per_chip, n_samples))
    row = 0
    for chip_seed in seeds:
        children = np.random.SeedSequence(
            int(chip_seed)).spawn(converters_per_chip)
        for child in children:
            noise[row] = np.random.default_rng(child).normal(
                0.0, sigma, size=n_samples)
            row += 1
    return noise


def build_chip_result(passed: np.ndarray, converters_per_chip: int,
                      samples_taken: int,
                      sample_rate: float) -> "BatchChipBistResult":
    """Assemble a :class:`BatchChipBistResult` from per-converter verdicts.

    Shared by the full- and partial-BIST batch engines, whose ``run_chips``
    differ only in how the per-converter decisions are produced.
    """
    chip_passed, registers = chip_grouping(passed, converters_per_chip)
    return BatchChipBistResult(
        n_chips=int(chip_passed.size),
        converters_per_chip=int(converters_per_chip),
        chip_passed=chip_passed,
        converter_passed=np.asarray(passed, dtype=bool),
        result_registers=registers,
        samples_taken=int(samples_taken),
        test_time_s=samples_taken / sample_rate)


def resolve_population_matrix(population: Union["DevicePopulation", "Wafer"]
                              ) -> Tuple[np.ndarray, float, float]:
    """A population's ``(transitions, full_scale, sample_rate)`` triple.

    Accepts either matrix-backed :class:`~repro.production.lot.Wafer`
    objects or :class:`~repro.adc.population.DevicePopulation` batches —
    the two population substrates every batch engine screens.
    """
    if isinstance(population, Wafer):
        return (population.transitions, population.spec.full_scale,
                population.spec.sample_rate)
    return (population.transition_matrix(), population.spec.full_scale,
            population.spec.sample_rate)


def population_truth_mask(transitions: np.ndarray, dnl_spec_lsb: float,
                          inl_spec_lsb: Optional[float] = None
                          ) -> np.ndarray:
    """True static-linearity classification of a transition matrix.

    The matrix form of :func:`repro.core.engine.true_goodness` (and of
    :meth:`repro.production.lot.Wafer.good_mask`), shared by every batch
    Monte-Carlo path so all engines score against one criterion.
    """
    good = batch_max_dnl(transitions) <= dnl_spec_lsb
    if inl_spec_lsb is not None:
        good &= batch_max_inl(transitions) <= inl_spec_lsb
    return good


@dataclass
class BatchChipBistResult:
    """Per-chip outcome of a batched multi-converter BIST run.

    The batched analogue of
    :class:`~repro.core.controller.ChipBistResult` over a whole lot of
    ICs: every chip's converters share one stimulus ramp, so the chip test
    time equals the single-converter test time regardless of how many
    converters each IC carries.
    """

    n_chips: int
    converters_per_chip: int
    chip_passed: np.ndarray
    converter_passed: np.ndarray
    result_registers: np.ndarray
    samples_taken: int
    test_time_s: float

    @property
    def n_chips_passed(self) -> int:
        """Chips on which every converter passed."""
        return int(np.count_nonzero(self.chip_passed))

    @property
    def chip_yield(self) -> float:
        """Fraction of chips passing as a whole."""
        return self.n_chips_passed / self.n_chips if self.n_chips else 0.0

    @property
    def converter_fallout(self) -> float:
        """Fraction of individual converters failing."""
        if self.converter_passed.size == 0:
            return 0.0
        return float(np.mean(~self.converter_passed))

    @property
    def sequential_test_time_s(self) -> float:
        """Test time had the converters of each chip been tested serially."""
        return self.test_time_s * self.converters_per_chip

    @property
    def parallel_speedup(self) -> float:
        """Chip-level test-time reduction of the shared-ramp arrangement."""
        return float(self.converters_per_chip)

    @classmethod
    def merge(cls, shards: "Sequence[BatchChipBistResult]"
              ) -> "BatchChipBistResult":
        """Concatenate per-shard chip results (in shard order).

        The shards must come from one run: same chip geometry and
        acquisition length.
        """
        shards = list(shards)
        if not shards:
            raise ValueError("cannot merge an empty shard list")
        first = shards[0]
        if any(s.converters_per_chip != first.converters_per_chip
               or s.samples_taken != first.samples_taken for s in shards):
            raise ValueError("shards disagree on the chip geometry or "
                             "acquisition length")
        return cls(
            n_chips=sum(s.n_chips for s in shards),
            converters_per_chip=first.converters_per_chip,
            chip_passed=np.concatenate([s.chip_passed for s in shards]),
            converter_passed=np.concatenate([s.converter_passed
                                             for s in shards]),
            result_registers=np.concatenate([s.result_registers
                                             for s in shards]),
            samples_taken=first.samples_taken,
            test_time_s=first.test_time_s)


class BatchBistEngine:
    """Run the paper's BIST on every device of a batch at once.

    Parameters
    ----------
    config:
        The measurement configuration, shared with the scalar
        :class:`~repro.core.engine.BistEngine`; both engines derive the
        identical ramp, limits and on-chip blocks from it.
    backend:
        Optional kernel-backend name (see :mod:`repro.core.backend`).
        ``None`` resolves the ambient backend at :meth:`prepare` time; the
        resolved name travels on the shard context so worker processes
        compute under the same backend.
    """

    def __init__(self, config: BistConfig, *,
                 backend: Optional[str] = None) -> None:
        self.config = config
        self._backend = backend
        self._limits = config.limits()
        self._deglitch = (DeglitchFilter(config.deglitch_depth,
                                         config.deglitch_mode)
                          if config.deglitch_depth > 0 else None)
        # The engine filters streams explicitly (once, shared between the
        # MSB clock and the LSB block), so its processor carries no filter.
        self._lsb = BatchLsbProcessor(self._limits, deglitch=None,
                                      counter_saturate=config.counter_saturate)
        # Shared with the scalar engine: ramp construction and the gate
        # count of the on-chip circuitry are one implementation, not two.
        self._scalar = BistEngine(config)
        self._msb_q = 1

    # ------------------------------------------------------------------ #
    # Properties
    # ------------------------------------------------------------------ #

    @property
    def limits(self) -> CountLimits:
        """The count limits in use."""
        return self._limits

    def gate_count(self) -> int:
        """Gate-equivalent estimate of the (per-device) on-chip circuitry."""
        return self._scalar.gate_count()

    # ------------------------------------------------------------------ #
    # Entry points
    # ------------------------------------------------------------------ #

    def run_wafer(self, wafer: Wafer, rng: RngLike = None,
                  chunk_size: Optional[int] = None,
                  plan: Optional[ExecutionPlan] = None) -> BatchBistResult:
        """Run the batched BIST on every die of a wafer."""
        spec = wafer.spec
        return self.run_transitions(wafer.transitions,
                                    full_scale=spec.full_scale,
                                    sample_rate=spec.sample_rate,
                                    rng=rng, chunk_size=chunk_size,
                                    plan=plan)

    def run_chips(self, wafer: Wafer, converters_per_chip: int,
                  rng: RngLike = None,
                  chunk_size: Optional[int] = None,
                  plan: Optional[ExecutionPlan] = None
                  ) -> BatchChipBistResult:
        """Run the batched BIST on a wafer of multi-converter ICs.

        Consecutive dies form one chip; all converters of a chip share the
        stimulus ramp, and the chip-level decisions equal what
        :class:`~repro.core.controller.MultiAdcBistController` decides for
        the same converters — evaluated here for the whole wafer in one
        array program.  With transition noise configured, chip ``c`` draws
        its per-converter noise from independent child generators seeded
        by :func:`chip_noise_seeds`, exactly the controller's scheme, so
        ``MultiAdcBistController.run_chip(dies, rng=chip_noise_seeds(rng,
        n_chips)[c])`` reproduces each chip's verdict and result register
        bit for bit.
        """
        if self.config.transition_noise_lsb > 0.0:
            return self._run_chips_noisy(wafer, converters_per_chip, rng,
                                         chunk_size=chunk_size, plan=plan)
        result = self.run_wafer(wafer, rng=rng, chunk_size=chunk_size,
                                plan=plan)
        return build_chip_result(result.passed, converters_per_chip,
                                 result.samples_taken,
                                 wafer.spec.sample_rate)

    def _run_chips_noisy(self, wafer: Wafer, converters_per_chip: int,
                         rng: RngLike,
                         chunk_size: Optional[int] = None,
                         plan: Optional[ExecutionPlan] = None
                         ) -> BatchChipBistResult:
        """Chip mode with per-converter noise seeds (controller parity).

        The per-chip noise is derived from :func:`chip_noise_seeds` alone,
        so sharding the chip axis over workers cannot change any chip's
        acquisition: chip-mode runs are plan-invariant by construction.
        """
        cfg = self.config
        if rng is not None and not isinstance(rng, (int, np.integer)):
            raise ValueError(
                "noisy chip runs take an integer seed (or None) so the "
                "per-converter child seeds match "
                "MultiAdcBistController.run_chip")
        transitions = wafer.transitions
        spec = wafer.spec
        ctx = self.prepare(transitions, spec.full_scale, spec.sample_rate)
        seeds = _validated_chip_seeds(transitions, converters_per_chip, rng)

        executor = ShardExecutor(plan if plan is not None
                                 else ExecutionPlan())
        bounds = executor.plan.shard_bounds(transitions.shape[0],
                                            align=converters_per_chip)
        chunk = (chunk_size if chunk_size is not None
                 else executor.plan.chunk_size)
        results = executor.map(
            self._noisy_chip_shard,
            [(ctx, transitions[lo:hi],
              seeds[lo // converters_per_chip:hi // converters_per_chip],
              converters_per_chip, chunk)
             for lo, hi in bounds])
        result = BatchBistResult.merge(results)
        return build_chip_result(result.passed, converters_per_chip,
                                 ctx.n_samples, spec.sample_rate)

    def _noisy_chip_shard(self, ctx: _BistShardContext,
                          transitions: np.ndarray, seeds: np.ndarray,
                          converters_per_chip: int,
                          chunk_size: Optional[int] = None
                          ) -> BatchBistResult:
        """One chip-aligned device slice of a noisy chip-mode run."""
        cfg = self.config
        n_chips = transitions.shape[0] // converters_per_chip
        sigma = cfg.transition_noise_lsb * ctx.lsb_volts
        with backend_scope(ctx.backend):
            if chunk_size is None:
                chunk_size = _stream_chunk_size(transitions.shape[1],
                                                ctx.n_samples)
            chips_per_chunk = max(1, chunk_size // converters_per_chip)

            outcomes = []
            for chip_lo, chip_hi in iter_slices(n_chips, chips_per_chunk):
                noise = _chip_noise_rows(seeds[chip_lo:chip_hi],
                                         converters_per_chip, sigma,
                                         ctx.n_samples)
                lo = chip_lo * converters_per_chip
                hi = chip_hi * converters_per_chip
                outcomes.append(self._process_streams(
                    transitions[lo:hi], ctx.ramp_voltages + noise))
            return self._combine(outcomes, transitions.shape[0],
                                 ctx.n_samples)

    def run_population(self, population: Union[DevicePopulation, Wafer],
                       rng: RngLike = None,
                       dnl_spec_lsb: Optional[float] = None,
                       inl_spec_lsb: Optional[float] = None,
                       plan: Optional[ExecutionPlan] = None
                       ) -> PopulationBistResult:
        """Drop-in batched replacement for ``BistEngine.run_population``.

        Accepts a :class:`~repro.adc.population.DevicePopulation` or a
        :class:`~repro.production.lot.Wafer` and returns the same
        :class:`~repro.core.engine.PopulationBistResult` the scalar loop
        produces, with identical accept and truly-good vectors.
        """
        cfg = self.config
        if dnl_spec_lsb is None:
            dnl_spec_lsb = cfg.dnl_spec_lsb
        if inl_spec_lsb is None:
            inl_spec_lsb = cfg.inl_spec_lsb
        transitions, full_scale, sample_rate = \
            resolve_population_matrix(population)
        result = self.run_transitions(transitions, full_scale=full_scale,
                                      sample_rate=sample_rate, rng=rng,
                                      plan=plan)
        truly_good = population_truth_mask(transitions, dnl_spec_lsb,
                                           inl_spec_lsb)
        return PopulationBistResult(n_devices=result.n_devices,
                                    accepted=result.passed,
                                    truly_good=truly_good)

    def run_transitions(self, transitions: np.ndarray,
                        full_scale: float = 1.0,
                        sample_rate: float = 1e6,
                        rng: RngLike = None,
                        chunk_size: Optional[int] = None,
                        plan: Optional[ExecutionPlan] = None
                        ) -> BatchBistResult:
        """Run the batched BIST on a ``(devices, transitions)`` matrix.

        Parameters
        ----------
        transitions:
            Transition-voltage matrix, one row per device under test.
        full_scale, sample_rate:
            Geometry/clock shared by the batch (one test insertion).
        rng:
            Seed or generator for the acquisition noise.  Without a plan
            it is consumed in device order exactly as the scalar
            population loop consumes it; with a plan it must be a seed
            (or ``None``) and per-shard child seeds are spawned from it.
        chunk_size:
            Devices processed per chunk; defaults to a large chunk on the
            event path and a smaller one on the stream path (which holds
            full ``(devices, samples)`` matrices in memory).
        plan:
            Optional :class:`~repro.production.execution.ExecutionPlan`
            scaling the run out over worker processes; results are
            bit-identical for any ``(workers, chunk_size)`` of the plan.
        """
        cfg = self.config
        transitions = np.asarray(transitions, dtype=float)
        if plan is not None:
            return ShardExecutor(plan).run(
                self, transitions, full_scale, sample_rate,
                rng=resolve_plan_seed(rng, cfg.seed), chunk_size=chunk_size)
        generator = (rng if isinstance(rng, np.random.Generator)
                     else np.random.default_rng(
                         rng if rng is not None else cfg.seed))
        context = self.prepare(transitions, full_scale, sample_rate)
        return self.run_shard(context, transitions, generator, chunk_size)

    # ------------------------------------------------------------------ #
    # WaferEngine protocol
    # ------------------------------------------------------------------ #

    def prepare(self, transitions: np.ndarray, full_scale: float = 1.0,
                sample_rate: float = 1e6) -> _BistShardContext:
        """Validate a batch and derive the shared per-run context."""
        cfg = self.config
        expected_cols = (1 << cfg.n_bits) - 1
        if transitions.ndim != 2 or transitions.shape[1] != expected_cols:
            raise ValueError(
                f"configuration is for {cfg.n_bits}-bit converters; expected "
                f"a (devices, {expected_cols}) transition matrix, got shape "
                f"{transitions.shape}")
        with current_telemetry().span("engine.bist.prepare",
                                      devices=int(transitions.shape[0])):
            proxy = IdealADC(cfg.n_bits, full_scale, sample_rate)
            ramp = self._scalar.build_ramp(proxy)
            n_samples = ramp.n_samples_for_adc(
                proxy, margin_lsb=cfg.start_margin_lsb)
            times = np.arange(n_samples) / sample_rate
            return _BistShardContext(
                ramp_voltages=ramp.voltage(times),
                n_samples=n_samples,
                lsb_volts=proxy.lsb,
                event_path=(cfg.transition_noise_lsb == 0.0
                            and cfg.stimulus_noise_lsb == 0.0
                            and self._deglitch is None),
                backend=resolve_backend_name(self._backend))

    def run_shard(self, context: _BistShardContext, transitions: np.ndarray,
                  rng: RngLike = None,
                  chunk_size: Optional[int] = None) -> BatchBistResult:
        """Run one contiguous device slice of a prepared batch.

        ``rng`` is the shard's own seed (plan mode) or the run's shared
        generator (legacy serial mode); either way the noise stream is
        consumed in device order, chunked transparently.
        """
        transitions = np.asarray(transitions, dtype=float)
        generator = (rng if isinstance(rng, np.random.Generator)
                     else np.random.default_rng(rng))
        with backend_scope(context.backend):
            if chunk_size is None:
                chunk_size = (
                    _event_chunk_size(transitions.shape[1],
                                      context.n_samples)
                    if context.event_path
                    else _stream_chunk_size(transitions.shape[1],
                                            context.n_samples))
            if chunk_size < 1:
                raise ValueError("chunk_size must be positive")

            n_devices = transitions.shape[0]
            t = current_telemetry()
            if t.enabled:
                t.count("engine.bist.shards")
                t.count("engine.bist.devices", n_devices)
                t.count("engine.bist.samples",
                        n_devices * context.n_samples)
                t.count("engine.bist.event_path_devices"
                        if context.event_path
                        else "engine.bist.stream_path_devices", n_devices)
                t.count(f"kernel.{context.backend}.shards")
                t.count(f"kernel.{context.backend}.devices", n_devices)
            with t.span("engine.bist.run_shard", devices=n_devices):
                outcomes = []
                for lo, hi in iter_slices(n_devices, chunk_size):
                    chunk = transitions[lo:hi]
                    if context.event_path:
                        outcomes.append(self._run_events(
                            chunk, context.ramp_voltages))
                    else:
                        outcomes.append(self._run_streams(
                            chunk, context.ramp_voltages,
                            context.lsb_volts, generator))
                return self._combine(outcomes, n_devices,
                                     context.n_samples)

    def merge(self, shard_results: Sequence[BatchBistResult]
              ) -> BatchBistResult:
        """Combine per-shard results (in shard order) into one result."""
        with current_telemetry().span("engine.bist.merge",
                                      shards=len(shard_results)):
            return BatchBistResult.merge(shard_results)

    # ------------------------------------------------------------------ #
    # Event path: crossing indices only, no sample matrix
    # ------------------------------------------------------------------ #

    def _run_events(self, transitions: np.ndarray,
                    ramp_voltages: np.ndarray) -> "_ChunkOutcome":
        """Noise-free fast path working purely on transition crossings.

        ``crossing[d, k]`` is the first sample index whose ramp voltage
        reaches transition ``k`` of device ``d``; the output code at sample
        ``t`` is the number of crossings at or before ``t`` (exactly the
        thermometer count the scalar ``TransferFunction.convert`` computes,
        monotone or not).  A *regular* device — every transition crossed at
        a distinct sample inside the record — yields its per-code counts
        directly as ``diff(crossing)``, produces exactly one LSB edge per
        transition, and satisfies the MSB reference counter identically
        (the code steps 0, 1, 2, …, so the upper bits always equal
        ``#falls = code >> 1``).  Only the rare irregular devices (missing
        codes folding two crossings onto one sample, gross curves starting
        above the ramp) take the general sorted-event reduction in
        :meth:`_irregular_events`.
        """
        cfg = self.config
        n_chunk = transitions.shape[0]
        n_samples = ramp_voltages.size
        crossing = shared_crossing_indices(transitions, ramp_voltages)

        in_range = (crossing >= 1) & (crossing <= n_samples - 1)
        regular = (in_range.all(axis=1)
                   & (np.diff(crossing, axis=1) > 0).all(axis=1))
        n_codes_expected = transitions.shape[1]

        outcome = _ChunkOutcome.empty(n_chunk)
        if regular.all():
            self._regular_outcome(crossing, outcome,
                                  np.ones(n_chunk, dtype=bool))
        else:
            self._regular_outcome(crossing[regular], outcome, regular)
            irregular = ~regular
            sub = self._irregular_events(crossing[irregular], n_samples)
            outcome.scatter(sub, irregular)
        outcome.transitions_ok = (outcome.n_transitions
                                  == n_codes_expected)
        return outcome

    def _regular_outcome(self, crossing: np.ndarray,
                         outcome: "_ChunkOutcome",
                         mask: np.ndarray) -> None:
        """Fill the outcome for devices with one clean edge per transition."""
        if crossing.shape[0] == 0:
            return
        cfg = self.config
        counts = np.diff(crossing, axis=1)
        decision = decide_counts(counts, self._limits,
                                 saturate=cfg.counter_saturate)
        dnl_passed = decision.dnl_pass.all(axis=1)
        inl_passed = decision.inl_pass.all(axis=1)
        outcome.dnl_passed[mask] = dnl_passed
        outcome.inl_passed[mask] = inl_passed
        outcome.n_transitions[mask] = crossing.shape[1]
        # Codes step 0, 1, 2, … one at a time, so the upper bits always
        # equal the reference counter: the functionality check passes.
        outcome.msb_passed[mask] = True
        widths = decision.readings * self._limits.delta_s_lsb
        mean = widths.mean(axis=1)
        mean = np.where(mean == 0.0, 1.0, mean)
        outcome.measured_max_dnl_lsb[mask] = \
            np.abs(widths / mean[:, None] - 1.0).max(axis=1)

    def _irregular_events(self, crossing: np.ndarray,
                          n_samples: int) -> "_ChunkOutcome":
        """Sorted-event reduction for devices with folded or missing edges.

        The LSB toggles at a sample iff an odd number of crossings land on
        it, and the MSB reference counter advances on odd-to-even code
        parity steps, so all decisions follow from the per-device crossing
        multiplicities.
        """
        cfg = self.config
        n_sub = crossing.shape[0]
        start_code, mult_p, times_p, live, _ = packed_crossing_events(
            crossing, n_samples)

        if cfg.check_msb:
            code_after = start_code[:, None] + np.cumsum(mult_p, axis=1)
            code_before = code_after - mult_p
            q = self._msb_q
            fall = ((code_before & 1 == 1) & (code_after & 1 == 0) & live)
            reference = (start_code >> q)[:, None] + np.cumsum(fall, axis=1)
            mismatch = ((code_after >> q) != reference) & live
            msb_ok = ~mismatch.any(axis=1)
        else:
            msb_ok = np.ones(n_sub, dtype=bool)

        # The LSB toggles at events with an odd crossing multiplicity;
        # nonzero() walks the packed layout device-major, event-ascending,
        # the flat order _from_edges expects.
        odd = ((mult_p & 1) == 1) & live
        edge_dev, edge_pos = np.nonzero(odd)
        lsb_res = self._lsb._from_edges(edge_dev,
                                        times_p[edge_dev, edge_pos],
                                        odd.sum(axis=1),
                                        n_bits=cfg.n_bits)
        return _ChunkOutcome.from_lsb(lsb_res, msb_ok)

    # ------------------------------------------------------------------ #
    # Stream path: chunked 2-D quantisation of the shared ramp
    # ------------------------------------------------------------------ #

    def _run_streams(self, transitions: np.ndarray,
                     ramp_voltages: np.ndarray, lsb_volts: float,
                     generator: np.random.Generator) -> "_ChunkOutcome":
        """General path materialising the acquisitions chunk-wise."""
        cfg = self.config
        n_chunk = transitions.shape[0]
        n_samples = ramp_voltages.size

        if cfg.transition_noise_lsb > 0.0:
            voltages = ramp_voltages + generator.normal(
                0.0, cfg.transition_noise_lsb * lsb_volts,
                size=(n_chunk, n_samples))
        else:
            voltages = np.broadcast_to(ramp_voltages, (n_chunk, n_samples))
        return self._process_streams(transitions, voltages)

    def _process_streams(self, transitions: np.ndarray,
                         voltages: np.ndarray) -> "_ChunkOutcome":
        """Quantise per-device voltage rows and run the on-chip blocks.

        The noise-provenance-agnostic half of the stream path: callers
        decide how the per-device voltages were produced (shared stream in
        device order, or per-converter child generators in chip mode).
        """
        cfg = self.config
        n_chunk = transitions.shape[0]

        codes = batch_quantise_rows(transitions, voltages)

        lsb_streams = (codes & 1).astype(np.int8)
        if self._deglitch is not None:
            # Filter once; the deglitched stream clocks the MSB reference
            # counter and feeds the LSB processing block, as in the scalar
            # engine (which also applies the filter a single time to each).
            lsb_streams = batch_deglitch(lsb_streams, self._deglitch)
        if cfg.check_msb:
            clock = lsb_streams if self._deglitch is not None else None
            tolerance = 1 if cfg.transition_noise_lsb > 0 else 0
            upper, reference, _ = batch_msb_reference(codes, self._msb_q,
                                                      clock=clock)
            msb_ok = ~(np.abs(upper - reference) > tolerance).any(axis=1)
        else:
            msb_ok = np.ones(n_chunk, dtype=bool)

        lsb_res = self._lsb.process(lsb_streams, n_bits=cfg.n_bits)
        return _ChunkOutcome.from_lsb(lsb_res, msb_ok)

    # ------------------------------------------------------------------ #
    # Chunk aggregation
    # ------------------------------------------------------------------ #

    def _combine(self, outcomes, n_devices: int,
                 n_samples: int) -> BatchBistResult:
        """Concatenate per-chunk outcomes into one per-device result."""
        dnl_passed = np.concatenate([o.dnl_passed for o in outcomes])
        inl_passed = np.concatenate([o.inl_passed for o in outcomes])
        transitions_ok = np.concatenate([o.transitions_ok
                                         for o in outcomes])
        msb_passed = np.concatenate([o.msb_passed for o in outcomes])
        n_transitions = np.concatenate([o.n_transitions for o in outcomes])
        measured = np.concatenate([o.measured_max_dnl_lsb
                                   for o in outcomes])
        lsb_passed = dnl_passed & inl_passed & transitions_ok
        return BatchBistResult(
            n_devices=n_devices,
            passed=lsb_passed & msb_passed,
            lsb_passed=lsb_passed,
            dnl_passed=dnl_passed,
            inl_passed=inl_passed,
            transitions_ok=transitions_ok,
            msb_passed=msb_passed,
            n_transitions=n_transitions,
            measured_max_dnl_lsb=measured,
            samples_taken=n_samples,
            limits=self._limits)
