"""Production-line subsystem: batched BIST over wafers and lots.

The paper's argument is economic — on-chip BIST shrinks off-chip data so a
tester floor can screen more converters per second.  This subpackage is the
floor itself: it simulates screening *populations* of converters the way a
production line processes them, with the device axis vectorised end to end.

Overview
--------

:mod:`repro.production.lot` — :class:`WaferSpec`, :class:`Wafer`,
    :class:`Lot`.  A wafer holds its dies as one transition-voltage matrix,
    drawn in a single call to
    :func:`~repro.adc.population.correlated_code_widths` (the paper's
    ladder statistics: sigma 0.16–0.21 LSB, pairwise correlation
    ``-1/(N-1)``), without materialising per-device converter objects.
    Any die can still be materialised for the scalar engine, bit-identical
    to its matrix row.

:mod:`repro.production.batch_engine` — :class:`BatchBistEngine`, the
    vectorised full BIST.  In the nominal noise-free configuration it works
    purely on transition-crossing events (one batched ``searchsorted`` of
    all transition levels into the shared ramp), never materialising the
    ``(devices, samples)`` code matrix; with noise or a deglitch filter it
    falls back to chunked 2-D quantisation of the shared ramp.  Both paths
    reproduce the scalar :class:`~repro.core.engine.BistEngine` decisions
    bit for bit — they share the count-limit kernel in
    :mod:`repro.core.decision` — while running orders of magnitude faster,
    which makes million-device Table-1 Monte-Carlo runs feasible.

:mod:`repro.production.partial_batch` — :class:`BatchPartialBistEngine`,
    the vectorised partial BIST (``q`` LSBs captured off-chip, upper bits
    verified on-chip, code reconstruction and histogram DNL/INL over the
    device axis).  Like the full-BIST batch engine it is a thin layer over
    the shared kernel in :mod:`repro.core.kernel` and matches the scalar
    :class:`~repro.core.partial_engine.PartialBistEngine` bit for bit.

:mod:`repro.production.analysis_batch` — :class:`BatchHistogramTest` and
    :class:`BatchDynamicSuite`, the *conventional* production tests (ramp
    code-density histogram, single-tone FFT suite) vectorised over the
    device axis and bit-exact against their scalar counterparts — the
    other half of the paper's BIST-vs-conventional comparison, now
    runnable at wafer scale on the same kernel.

:mod:`repro.production.execution` — :class:`ExecutionPlan` and
    :class:`ShardExecutor`, the deterministic scale-out layer.  Any engine
    implementing the :class:`WaferEngine` protocol (all four above) can be
    sharded over worker processes; per-shard-index
    :class:`numpy.random.SeedSequence` spawning makes the results
    bit-identical for any ``(workers, chunk_size)``, with ``workers=1``
    as the in-process serial fallback.

:mod:`repro.production.pool` — :class:`WorkerPool`,
    :class:`SharedWaferBuffer` and :class:`SliceRef`, the persistent
    zero-copy dispatch substrate under the executor.  Workers are forked
    once and reused across dispatches (the module default pool, or a
    :func:`shared_pool` block); wafer matrices live in
    ``multiprocessing.shared_memory`` segments and travel to workers as
    slice *descriptors* instead of pickled rows.  Purely a scheduling
    layer: a warm pool, a cold pool and the serial path all produce
    byte-identical results.

:mod:`repro.production.line` — :class:`ScreeningLine`, the station chain
    (screening → optional retest → quality binning) with per-station yield
    and throughput accounting, costed against a tester model via
    :mod:`repro.economics`.  Screens under any (architecture, method, q)
    scenario: full or partial BIST, the conventional histogram test or the
    dynamic suite (``method=``), single converters or multi-converter ICs
    (``devices_per_ic``), flash, SAR or pipeline wafers.

:mod:`repro.production.store` — :class:`ResultStore`, the floor ledger:
    accumulates per-lot accept/reject/bin statistics and renders them with
    :mod:`repro.reporting.tables`; :meth:`ResultStore.merge` shard-merges
    the per-scenario child ledgers of a campaign and
    :meth:`ResultStore.campaign_table` pivots them per scenario.

The declarative front door over all of this lives in :mod:`repro.campaign`:
a frozen :class:`~repro.campaign.scenario.Scenario` describes a run,
:func:`~repro.campaign.factory.make_engine` is the only place engines are
constructed (the line and the CLI are wired onto it), and
:class:`~repro.campaign.driver.Campaign` screens whole scenario grids.

Quick start
-----------

>>> from repro.core import BistConfig
>>> from repro.production import (Lot, WaferSpec, ScreeningLine,
...                               ResultStore)
>>> lot = Lot.draw(WaferSpec(n_devices=1000), n_wafers=2, seed=7)
>>> line = ScreeningLine(BistConfig(counter_bits=7, dnl_spec_lsb=1.0))
>>> store = ResultStore()
>>> report = line.screen_lot(lot, rng=0, store=store)
>>> print(store.summary())          # doctest: +SKIP

See ``examples/wafer_screening.py`` for a complete walk-through and
``benchmarks/test_bench_production.py`` for the scalar-vs-batch
devices-per-second comparison.
"""

from repro.production.analysis_batch import (
    BatchDynamicResult,
    BatchDynamicSuite,
    BatchHistogramResult,
    BatchHistogramTest,
)
from repro.production.execution import (
    DEFAULT_SHARD_DEVICES,
    ExecutionPlan,
    ShardExecutor,
    WaferEngine,
)
from repro.production.batch_engine import (
    BatchBistEngine,
    BatchBistResult,
    BatchChipBistResult,
    BatchLsbProcessor,
    BatchLsbResult,
    batch_deglitch,
    chip_grouping,
    chip_noise_seeds,
)
from repro.production.line import (
    DEFAULT_BIN_EDGES_LSB,
    SCREENING_METHODS,
    LotScreeningReport,
    ScreeningLine,
    StationStats,
)
from repro.production.lot import Lot, Wafer, WaferSpec
from repro.production.partial_batch import (
    BatchPartialBistEngine,
    BatchPartialBistResult,
)
from repro.production.pool import (
    AUTO_SHARE_MIN_BYTES,
    PoolBrokenError,
    SharedWaferBuffer,
    SliceRef,
    WorkerPool,
    as_slice_ref,
    close_default_pool,
    current_pool,
    get_default_pool,
    share_wafer,
    shared_pool,
    sweep_stale_segments,
)
from repro.production.store import ResultStore

__all__ = [
    "BatchBistEngine",
    "BatchBistResult",
    "BatchChipBistResult",
    "BatchDynamicResult",
    "BatchDynamicSuite",
    "BatchHistogramResult",
    "BatchHistogramTest",
    "BatchLsbProcessor",
    "BatchLsbResult",
    "BatchPartialBistEngine",
    "BatchPartialBistResult",
    "batch_deglitch",
    "chip_grouping",
    "chip_noise_seeds",
    "DEFAULT_SHARD_DEVICES",
    "ExecutionPlan",
    "ShardExecutor",
    "WaferEngine",
    "AUTO_SHARE_MIN_BYTES",
    "PoolBrokenError",
    "SharedWaferBuffer",
    "SliceRef",
    "WorkerPool",
    "as_slice_ref",
    "close_default_pool",
    "current_pool",
    "get_default_pool",
    "share_wafer",
    "shared_pool",
    "sweep_stale_segments",
    "DEFAULT_BIN_EDGES_LSB",
    "SCREENING_METHODS",
    "LotScreeningReport",
    "ScreeningLine",
    "StationStats",
    "Lot",
    "Wafer",
    "WaferSpec",
    "ResultStore",
]
