"""Vectorised conventional-test analysis: histogram and dynamic suites.

The paper's headline comparison pits the count-limit BIST against the
*conventional* production flow — the ramp code-density (histogram) test and
the FFT-based dynamic suite.  The BIST side of that comparison has run
wafer-wide since the batch engines landed; this module brings the
conventional side onto the same device-axis kernel so the BIST-vs-
conventional trade-off (yield, escapes, tester time, data volume) can be
reproduced at production scale on one shared wafer draw.

Two batch analysers are provided, both bit-exact against their scalar
counterparts:

:class:`BatchHistogramTest`
    The conventional ramp histogram test
    (:class:`~repro.analysis.histogram.HistogramTest`) across the device
    axis.  Noise-free acquisitions collapse to the crossing-event histogram
    of :func:`repro.core.kernel.batch_shared_ramp_histogram` (the
    ``(devices, samples)`` code matrix never exists); noisy acquisitions
    quantise per-device voltage rows with
    :func:`repro.core.kernel.batch_quantise_rows`, consuming the shared
    generator in device order exactly as a scalar loop would.  DNL/INL and
    the pass/fail decisions come from the shared
    :func:`repro.core.kernel.batch_histogram_linearity` kernel, the same
    reductions the scalar :func:`repro.analysis.linearity.dnl_from_histogram`
    performs.

:class:`BatchDynamicSuite`
    The single-tone dynamic test
    (:class:`~repro.analysis.dynamic.DynamicAnalyzer`) across the device
    axis: one shared coherent sine stimulus, batched quantisation, one
    batched windowed FFT (:meth:`DynamicAnalyzer.windowed_power`) and the
    vectorised per-tone bookkeeping
    (:meth:`DynamicAnalyzer.analyze_power_batch`, a per-device
    fundamental-bin index matrix instead of a per-device Python loop) — so
    THD, SNR, SINAD, ENOB and SFDR equal the scalar ``measure`` figures
    bit for bit, and a :class:`~repro.analysis.dynamic.DynamicSpec` turns
    them into screening decisions.

Both expose the ``run_wafer`` / ``run_transitions`` protocol of the batch
BIST engines, which is what lets :class:`~repro.production.line.ScreeningLine`
mount them as alternative screening stations (``method="histogram"`` /
``"dynamic"``) with per-method tester-time economics, and both implement
the :class:`~repro.production.execution.WaferEngine` shard protocol, so
either can be scaled out over worker processes with an
:class:`~repro.production.execution.ExecutionPlan`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Union

import numpy as np

from repro.adc.ideal import IdealADC
from repro.analysis.dynamic import DynamicAnalyzer, DynamicSpec
from repro.analysis.histogram import HistogramTest
from repro.core.backend import (
    auto_chunk_size,
    backend_scope,
    current_backend,
    resolve_backend_name,
)
from repro.core.kernel import (
    batch_code_histogram,
    batch_histogram_linearity,
    batch_quantise_rows,
    batch_shared_ramp_histogram,
)
from repro.production.execution import (
    ExecutionPlan,
    ShardExecutor,
    iter_slices,
    resolve_plan_seed,
)
from repro.production.lot import Wafer
from repro.signals.ramp import RampStimulus
from repro.signals.sine import SineStimulus
from repro.telemetry.core import current_telemetry

__all__ = ["BatchHistogramResult", "BatchHistogramTest",
           "BatchDynamicResult", "BatchDynamicSuite"]

RngLike = Union[int, np.random.Generator, None]

def _analysis_chunk_size(n_transitions: int, n_samples: int,
                         fft_bytes: int = 0) -> int:
    """Default devices-per-chunk from the materialised per-row bytes.

    Both analysis engines materialise a float64 noise/voltage row plus a
    code row in the active backend's code dtype per device inside one
    chunk; the dynamic suite adds the windowed FFT work (``fft_bytes``
    per sample).  Compacted code dtypes shrink the row and widen the
    default chunk; chunking is RNG-transparent, so this only moves the
    working-set size, never the results.
    """
    backend = current_backend()
    row = n_samples * (16 + backend.code_dtype(n_transitions + 1).itemsize
                       + fft_bytes)
    return auto_chunk_size(row)


def _infer_n_bits(transitions: np.ndarray) -> int:
    """Resolution implied by a ``(devices, 2**n - 1)`` transition matrix."""
    if transitions.ndim != 2:
        raise ValueError("transitions must be a (devices, levels) matrix")
    n_codes = transitions.shape[1] + 1
    n_bits = n_codes.bit_length() - 1
    if (1 << n_bits) != n_codes or n_bits < 2:
        raise ValueError(
            f"a transition matrix needs 2**n - 1 columns for n >= 2 bits, "
            f"got {transitions.shape[1]}")
    return n_bits


@dataclass(frozen=True)
class _HistogramShardContext:
    """Per-run state shared by every shard of one batched histogram run."""

    ramp_voltages: np.ndarray
    n_samples: int
    n_bits: int
    lsb_volts: float
    backend: str = "numpy"


@dataclass(frozen=True)
class _DynamicShardContext:
    """Per-run state shared by every shard of one batched dynamic run."""

    sine_voltages: np.ndarray
    freqs: np.ndarray
    n_samples: int
    n_bits: int
    lsb_volts: float
    fundamental_hz: float
    sample_rate: float
    spec: DynamicSpec
    backend: str = "numpy"


@dataclass
class BatchHistogramResult:
    """Per-device outcome of one batched conventional histogram test.

    All arrays have one entry per device; ``passed`` matches what the
    scalar :class:`~repro.analysis.histogram.HistogramTest` decides for
    each device individually (devices whose inner histogram is empty — the
    case the scalar test raises on — fail with NaN estimates).
    """

    n_devices: int
    counts: np.ndarray
    passed: np.ndarray
    measurable: np.ndarray
    measured_max_dnl_lsb: np.ndarray
    measured_max_inl_lsb: np.ndarray
    dnl_spec_lsb: float
    inl_spec_lsb: Optional[float]
    samples_per_code: float
    samples_taken: int
    n_bits: int

    @property
    def n_accepted(self) -> int:
        """Number of devices the histogram test accepted."""
        return int(np.count_nonzero(self.passed))

    @property
    def accept_fraction(self) -> float:
        """Fraction of devices accepted."""
        return self.n_accepted / self.n_devices if self.n_devices else 0.0

    @property
    def bits_transferred_per_device(self) -> int:
        """Output bits the tester captures per device (full words)."""
        return self.samples_taken * self.n_bits

    @property
    def off_chip_bits_transferred(self) -> int:
        """Total tester capture volume of the batch."""
        return self.bits_transferred_per_device * self.n_devices

    def estimated_code_widths_lsb(self) -> np.ndarray:
        """Per-device inner code widths as the histogram estimates them.

        With a linear ramp the expected hits per code are proportional to
        the code width; at ``samples_per_code`` samples per ideal LSB the
        width estimate is simply ``counts / samples_per_code``.  This is
        the quantity the convergence property tests pin against the drawn
        ``code_width_matrix_lsb``.
        """
        return self.counts[:, 1:-1] / self.samples_per_code

    @classmethod
    def merge(cls, shards: "Sequence[BatchHistogramResult]"
              ) -> "BatchHistogramResult":
        """Concatenate per-shard results (in shard order) into one batch.

        The shards must come from one run: same stimulus, specification
        and resolution.  This is the ``merge`` leg of the
        :class:`~repro.production.execution.WaferEngine` protocol.
        """
        shards = list(shards)
        if not shards:
            raise ValueError("cannot merge an empty shard list")
        first = shards[0]
        if any(s.samples_taken != first.samples_taken
               or s.n_bits != first.n_bits for s in shards):
            raise ValueError("shards disagree on the stimulus or "
                             "resolution")
        return cls(
            n_devices=sum(s.n_devices for s in shards),
            counts=np.concatenate([s.counts for s in shards]),
            passed=np.concatenate([s.passed for s in shards]),
            measurable=np.concatenate([s.measurable for s in shards]),
            measured_max_dnl_lsb=np.concatenate(
                [s.measured_max_dnl_lsb for s in shards]),
            measured_max_inl_lsb=np.concatenate(
                [s.measured_max_inl_lsb for s in shards]),
            dnl_spec_lsb=first.dnl_spec_lsb,
            inl_spec_lsb=first.inl_spec_lsb,
            samples_per_code=first.samples_per_code,
            samples_taken=first.samples_taken,
            n_bits=first.n_bits)


class BatchHistogramTest:
    """Run the conventional ramp histogram test on a whole batch at once.

    Parameters mirror :class:`~repro.analysis.histogram.HistogramTest`
    exactly (the scalar test is kept as the batch-of-1 reference); both
    derive the identical ramp and decision logic.

    Parameters
    ----------
    samples_per_code:
        Average number of samples falling into each code bin.
    dnl_spec_lsb, inl_spec_lsb:
        Specification for the pass/fail decision, in LSB.
    transition_noise_lsb:
        Converter input-referred noise used during the acquisition.
    seed:
        Default seed for the acquisition noise.
    backend:
        Kernel backend name (see :mod:`repro.core.backend`); ``None``
        resolves the ambient/default backend at ``prepare`` time.
    """

    def __init__(self, samples_per_code: float = 64.0,
                 dnl_spec_lsb: float = 1.0,
                 inl_spec_lsb: Optional[float] = None,
                 transition_noise_lsb: float = 0.0,
                 seed: Optional[int] = None, *,
                 backend: Optional[str] = None) -> None:
        # Validation and configuration live in the scalar test; the batch
        # object is a device-axis execution strategy, not a second config.
        self._backend = backend
        self._scalar = HistogramTest(
            samples_per_code=samples_per_code,
            dnl_spec_lsb=dnl_spec_lsb,
            inl_spec_lsb=inl_spec_lsb,
            transition_noise_lsb=transition_noise_lsb,
            seed=seed)

    @property
    def scalar(self) -> HistogramTest:
        """The scalar batch-of-1 reference test."""
        return self._scalar

    @property
    def samples_per_code(self) -> float:
        """Ramp density in samples per ideal LSB."""
        return self._scalar.samples_per_code

    @property
    def dnl_spec_lsb(self) -> float:
        """DNL specification in LSB."""
        return self._scalar.dnl_spec_lsb

    @property
    def inl_spec_lsb(self) -> Optional[float]:
        """INL specification in LSB (``None`` disables the INL check)."""
        return self._scalar.inl_spec_lsb

    @classmethod
    def paper_production(cls, n_bits: int = 6, dnl_spec_lsb: float = 1.0,
                         **kwargs) -> "BatchHistogramTest":
        """The 4096-sample production test of section 4, batched."""
        samples_per_code = 4096.0 / (1 << n_bits)
        return cls(samples_per_code=samples_per_code,
                   dnl_spec_lsb=dnl_spec_lsb, **kwargs)

    # ------------------------------------------------------------------ #
    # Entry points
    # ------------------------------------------------------------------ #

    def run_wafer(self, wafer: Wafer, rng: RngLike = None,
                  chunk_size: Optional[int] = None,
                  plan: Optional[ExecutionPlan] = None
                  ) -> BatchHistogramResult:
        """Run the batched histogram test on every die of a wafer."""
        spec = wafer.spec
        return self.run_transitions(wafer.transitions,
                                    full_scale=spec.full_scale,
                                    sample_rate=spec.sample_rate,
                                    rng=rng, chunk_size=chunk_size,
                                    plan=plan)

    def run_transitions(self, transitions: np.ndarray,
                        full_scale: float = 1.0,
                        sample_rate: float = 1e6,
                        rng: RngLike = None,
                        chunk_size: Optional[int] = None,
                        plan: Optional[ExecutionPlan] = None
                        ) -> BatchHistogramResult:
        """Run the batched histogram test on a transition-voltage matrix.

        Parameters
        ----------
        transitions:
            ``(devices, 2**n - 1)`` transition matrix, one row per device.
        full_scale, sample_rate:
            Geometry/clock shared by the batch.
        rng:
            Seed or generator for the acquisition noise.  Without a plan
            it is consumed in device order exactly as a scalar loop over
            the devices consumes a shared generator; with a plan it must
            be a seed (or ``None``) and per-shard child seeds are spawned
            from it.
        chunk_size:
            Devices processed per chunk on the noisy path (bounds the
            transient ``(devices, samples)`` matrices).
        plan:
            Optional :class:`~repro.production.execution.ExecutionPlan`
            scaling the run out over worker processes; results are
            bit-identical for any ``(workers, chunk_size)`` of the plan.
        """
        scalar = self._scalar
        transitions = np.asarray(transitions, dtype=float)
        if plan is not None:
            return ShardExecutor(plan).run(
                self, transitions, full_scale, sample_rate,
                rng=resolve_plan_seed(rng, scalar.seed),
                chunk_size=chunk_size)
        generator = (rng if isinstance(rng, np.random.Generator)
                     else np.random.default_rng(
                         rng if rng is not None else scalar.seed))
        context = self.prepare(transitions, full_scale, sample_rate)
        return self.run_shard(context, transitions, generator, chunk_size)

    # ------------------------------------------------------------------ #
    # WaferEngine protocol
    # ------------------------------------------------------------------ #

    def prepare(self, transitions: np.ndarray, full_scale: float = 1.0,
                sample_rate: float = 1e6) -> _HistogramShardContext:
        """Validate a batch and derive the shared per-run context."""
        scalar = self._scalar
        with current_telemetry().span("engine.histogram.prepare",
                                      devices=int(transitions.shape[0])):
            n_bits = _infer_n_bits(transitions)
            proxy = IdealADC(n_bits, full_scale, sample_rate)
            # Identical stimulus derivation to HistogramTest.acquire.
            ramp = RampStimulus.for_adc(proxy, scalar.samples_per_code)
            n_samples = ramp.n_samples_for_adc(proxy)
            times = np.arange(n_samples) / sample_rate
            return _HistogramShardContext(
                ramp_voltages=ramp.voltage(times),
                n_samples=n_samples,
                n_bits=n_bits,
                lsb_volts=proxy.lsb,
                backend=resolve_backend_name(self._backend))

    def run_shard(self, context: _HistogramShardContext,
                  transitions: np.ndarray, rng: RngLike = None,
                  chunk_size: Optional[int] = None) -> BatchHistogramResult:
        """Run one contiguous device slice of a prepared batch."""
        scalar = self._scalar
        transitions = np.asarray(transitions, dtype=float)
        generator = (rng if isinstance(rng, np.random.Generator)
                     else np.random.default_rng(rng))
        with backend_scope(context.backend):
            if chunk_size is None:
                chunk_size = _analysis_chunk_size(transitions.shape[1],
                                                  context.n_samples)
            if chunk_size < 1:
                raise ValueError("chunk_size must be positive")

            n_devices = transitions.shape[0]
            n_codes = 1 << context.n_bits
            t = current_telemetry()
            if t.enabled:
                t.count("engine.histogram.shards")
                t.count("engine.histogram.devices", n_devices)
                t.count("engine.histogram.samples",
                        n_devices * context.n_samples)
                t.count("engine.histogram.event_path_devices"
                        if scalar.transition_noise_lsb == 0.0
                        else "engine.histogram.stream_path_devices",
                        n_devices)
                t.count(f"kernel.{context.backend}.shards")
                t.count(f"kernel.{context.backend}.devices", n_devices)
            with t.span("engine.histogram.run_shard", devices=n_devices):
                if scalar.transition_noise_lsb > 0.0:
                    counts = np.empty((n_devices, n_codes), dtype=float)
                    for lo, hi in iter_slices(n_devices, chunk_size):
                        chunk = transitions[lo:hi]
                        # Per-device noise rows, drawn in device order from
                        # the shard's stream (row d is the d-th scalar draw).
                        voltages = context.ramp_voltages + generator.normal(
                            0.0,
                            scalar.transition_noise_lsb * context.lsb_volts,
                            size=(chunk.shape[0], context.n_samples))
                        codes = batch_quantise_rows(chunk, voltages)
                        # Codes from a (devices, 2**n - 1) transition matrix
                        # are within [0, n_codes), as the kernel requires.
                        counts[lo:hi] = batch_code_histogram(codes, n_codes)
                else:
                    # Event path: the histogram follows from the sorted
                    # crossing indices alone; no per-sample matrix is ever
                    # materialised.
                    counts = batch_shared_ramp_histogram(
                        transitions, context.ramp_voltages).astype(float)

                return self._evaluate(counts, context.n_bits,
                                      context.n_samples)

    def merge(self, shard_results: Sequence[BatchHistogramResult]
              ) -> BatchHistogramResult:
        """Combine per-shard results (in shard order) into one result."""
        with current_telemetry().span("engine.histogram.merge",
                                      shards=len(shard_results)):
            return BatchHistogramResult.merge(shard_results)

    def _evaluate(self, counts: np.ndarray, n_bits: int,
                  n_samples: int) -> BatchHistogramResult:
        """Histogram → DNL/INL → pass/fail over the device axis."""
        scalar = self._scalar
        dnl, inl, measurable = batch_histogram_linearity(counts)
        max_dnl = np.abs(dnl).max(axis=1)
        max_inl = np.abs(inl).max(axis=1)
        passed = measurable & (max_dnl <= scalar.dnl_spec_lsb)
        if scalar.inl_spec_lsb is not None:
            passed &= max_inl <= scalar.inl_spec_lsb
        max_dnl = np.where(measurable, max_dnl, np.nan)
        max_inl = np.where(measurable, max_inl, np.nan)
        return BatchHistogramResult(
            n_devices=counts.shape[0],
            counts=counts,
            passed=passed,
            measurable=measurable,
            measured_max_dnl_lsb=max_dnl,
            measured_max_inl_lsb=max_inl,
            dnl_spec_lsb=scalar.dnl_spec_lsb,
            inl_spec_lsb=scalar.inl_spec_lsb,
            samples_per_code=scalar.samples_per_code,
            samples_taken=n_samples,
            n_bits=n_bits)


@dataclass
class BatchDynamicResult:
    """Per-device outcome of one batched dynamic (FFT) test.

    All figure-of-merit arrays have one entry per device and equal, bit
    for bit, what :meth:`repro.analysis.dynamic.DynamicAnalyzer.measure`
    reports for each device individually under the shared-generator
    convention.
    """

    n_devices: int
    passed: np.ndarray
    enob: np.ndarray
    sinad_db: np.ndarray
    snr_db: np.ndarray
    thd_db: np.ndarray
    sfdr_db: np.ndarray
    spec: DynamicSpec
    fundamental_hz: float
    samples_taken: int
    n_bits: int

    @property
    def n_accepted(self) -> int:
        """Number of devices the dynamic suite accepted."""
        return int(np.count_nonzero(self.passed))

    @property
    def accept_fraction(self) -> float:
        """Fraction of devices accepted."""
        return self.n_accepted / self.n_devices if self.n_devices else 0.0

    @property
    def bits_transferred_per_device(self) -> int:
        """Output bits the tester captures per device (full words)."""
        return self.samples_taken * self.n_bits

    @property
    def enob_shortfall_lsb(self) -> np.ndarray:
        """Effective-bit loss ``n_bits - ENOB`` (the binning metric).

        The dynamic analogue of the measured |DNL| the BIST/histogram
        stations bin on: 0 is a perfect converter, larger is worse, and
        the scale (fractions of a bit) is comparable to LSB units.
        """
        return np.maximum(self.n_bits - self.enob, 0.0)

    @classmethod
    def merge(cls, shards: "Sequence[BatchDynamicResult]"
              ) -> "BatchDynamicResult":
        """Concatenate per-shard results (in shard order) into one batch.

        The shards must come from one run: same stimulus, record length
        and pass/fail limits.  This is the ``merge`` leg of the
        :class:`~repro.production.execution.WaferEngine` protocol.
        """
        shards = list(shards)
        if not shards:
            raise ValueError("cannot merge an empty shard list")
        first = shards[0]
        if any(s.samples_taken != first.samples_taken
               or s.fundamental_hz != first.fundamental_hz
               or s.n_bits != first.n_bits for s in shards):
            raise ValueError("shards disagree on the stimulus or record")
        return cls(
            n_devices=sum(s.n_devices for s in shards),
            passed=np.concatenate([s.passed for s in shards]),
            enob=np.concatenate([s.enob for s in shards]),
            sinad_db=np.concatenate([s.sinad_db for s in shards]),
            snr_db=np.concatenate([s.snr_db for s in shards]),
            thd_db=np.concatenate([s.thd_db for s in shards]),
            sfdr_db=np.concatenate([s.sfdr_db for s in shards]),
            spec=first.spec,
            fundamental_hz=first.fundamental_hz,
            samples_taken=first.samples_taken,
            n_bits=first.n_bits)


class BatchDynamicSuite:
    """Run the single-tone dynamic test on a whole batch at once.

    One coherent sine (shared by the batch geometry) drives every device;
    acquisition, windowed FFT *and* the per-tone bookkeeping
    (:meth:`~repro.analysis.dynamic.DynamicAnalyzer.analyze_power_batch`,
    with a per-device fundamental-bin index matrix) all run across the
    device axis — and the scalar
    :meth:`~repro.analysis.dynamic.DynamicAnalyzer.analyze_power` is the
    batch-of-1 wrapper of that same kernel, so the figures of merit match
    a scalar loop bit for bit.

    Parameters
    ----------
    analyzer:
        The FFT analysis configuration (record length, window, harmonic
        count); defaults to a 4096-sample Hann analyzer.
    spec:
        Pass/fail limits; defaults to an ENOB floor one bit below the
        nominal resolution (resolved per batch, since the analyzer does
        not know ``n_bits``).
    target_frequency:
        Requested sine frequency; defaults to ``sample_rate / 50`` and is
        snapped to the nearest coherent frequency, as in the scalar
        ``measure``.
    amplitude_fraction:
        Sine amplitude as a fraction of full scale.
    transition_noise_lsb:
        Converter input-referred noise during the acquisition.
    seed:
        Default seed for the acquisition noise.
    backend:
        Kernel backend name (see :mod:`repro.core.backend`); ``None``
        resolves the ambient/default backend at ``prepare`` time.
    """

    def __init__(self, analyzer: Optional[DynamicAnalyzer] = None,
                 spec: Optional[DynamicSpec] = None,
                 target_frequency: Optional[float] = None,
                 amplitude_fraction: float = 0.49,
                 transition_noise_lsb: float = 0.0,
                 seed: Optional[int] = None, *,
                 backend: Optional[str] = None) -> None:
        self._backend = backend
        self.analyzer = analyzer if analyzer is not None else DynamicAnalyzer()
        self.spec = spec
        self.target_frequency = target_frequency
        self.amplitude_fraction = float(amplitude_fraction)
        self.transition_noise_lsb = float(transition_noise_lsb)
        self.seed = seed

    def resolved_spec(self, n_bits: int) -> DynamicSpec:
        """The pass/fail limits used for an ``n_bits`` batch."""
        if self.spec is not None:
            return self.spec
        return DynamicSpec(min_enob=float(n_bits) - 1.0)

    # ------------------------------------------------------------------ #
    # Entry points
    # ------------------------------------------------------------------ #

    def run_wafer(self, wafer: Wafer, rng: RngLike = None,
                  chunk_size: Optional[int] = None,
                  plan: Optional[ExecutionPlan] = None
                  ) -> BatchDynamicResult:
        """Run the batched dynamic suite on every die of a wafer."""
        spec = wafer.spec
        return self.run_transitions(wafer.transitions,
                                    full_scale=spec.full_scale,
                                    sample_rate=spec.sample_rate,
                                    rng=rng, chunk_size=chunk_size,
                                    plan=plan)

    def run_transitions(self, transitions: np.ndarray,
                        full_scale: float = 1.0,
                        sample_rate: float = 1e6,
                        rng: RngLike = None,
                        chunk_size: Optional[int] = None,
                        plan: Optional[ExecutionPlan] = None
                        ) -> BatchDynamicResult:
        """Run the batched dynamic suite on a transition-voltage matrix.

        Parameters follow :meth:`BatchHistogramTest.run_transitions`;
        without a plan the shared generator is consumed in device order,
        matching a scalar loop calling
        ``analyzer.measure(device, rng=generator)``.
        """
        transitions = np.asarray(transitions, dtype=float)
        if plan is not None:
            return ShardExecutor(plan).run(
                self, transitions, full_scale, sample_rate,
                rng=resolve_plan_seed(rng, self.seed),
                chunk_size=chunk_size)
        generator = (rng if isinstance(rng, np.random.Generator)
                     else np.random.default_rng(
                         rng if rng is not None else self.seed))
        context = self.prepare(transitions, full_scale, sample_rate)
        return self.run_shard(context, transitions, generator, chunk_size)

    # ------------------------------------------------------------------ #
    # WaferEngine protocol
    # ------------------------------------------------------------------ #

    def prepare(self, transitions: np.ndarray, full_scale: float = 1.0,
                sample_rate: float = 1e6) -> _DynamicShardContext:
        """Validate a batch and derive the shared per-run context."""
        analyzer = self.analyzer
        with current_telemetry().span("engine.dynamic.prepare",
                                      devices=int(transitions.shape[0])):
            n_bits = _infer_n_bits(transitions)
            proxy = IdealADC(n_bits, full_scale, sample_rate)
            target = (self.target_frequency
                      if self.target_frequency is not None
                      else sample_rate / 50.0)
            n_samples = analyzer.n_samples
            stimulus = SineStimulus.for_adc(
                proxy, target, n_samples,
                amplitude_fraction=self.amplitude_fraction)
            times = np.arange(n_samples) / sample_rate
            return _DynamicShardContext(
                sine_voltages=stimulus.voltage(times),
                freqs=np.fft.rfftfreq(n_samples, d=1.0 / sample_rate),
                n_samples=n_samples,
                n_bits=n_bits,
                lsb_volts=proxy.lsb,
                fundamental_hz=stimulus.frequency,
                sample_rate=sample_rate,
                spec=self.resolved_spec(n_bits),
                backend=resolve_backend_name(self._backend))

    def run_shard(self, context: _DynamicShardContext,
                  transitions: np.ndarray, rng: RngLike = None,
                  chunk_size: Optional[int] = None) -> BatchDynamicResult:
        """Run one contiguous device slice of a prepared batch."""
        analyzer = self.analyzer
        transitions = np.asarray(transitions, dtype=float)
        generator = (rng if isinstance(rng, np.random.Generator)
                     else np.random.default_rng(rng))
        with backend_scope(context.backend):
            if chunk_size is None:
                chunk_size = _analysis_chunk_size(
                    transitions.shape[1], context.n_samples, fft_bytes=16)
            if chunk_size < 1:
                raise ValueError("chunk_size must be positive")

            n_devices = transitions.shape[0]
            n_samples = context.n_samples
            spec = context.spec
            t = current_telemetry()
            if t.enabled:
                t.count("engine.dynamic.shards")
                t.count("engine.dynamic.devices", n_devices)
                t.count("engine.dynamic.samples", n_devices * n_samples)
                # The FFT suite always materialises the sample matrix; the
                # noise-free case is still the cheap shared-stimulus path.
                t.count("engine.dynamic.event_path_devices"
                        if self.transition_noise_lsb == 0.0
                        else "engine.dynamic.stream_path_devices", n_devices)
                t.count(f"kernel.{context.backend}.shards")
                t.count(f"kernel.{context.backend}.devices", n_devices)
            with t.span("engine.dynamic.run_shard", devices=n_devices):
                chunks = []
                for lo, hi in iter_slices(n_devices, chunk_size):
                    chunk = transitions[lo:hi]
                    if self.transition_noise_lsb > 0.0:
                        voltages = context.sine_voltages + generator.normal(
                            0.0,
                            self.transition_noise_lsb * context.lsb_volts,
                            size=(chunk.shape[0], n_samples))
                    else:
                        voltages = np.broadcast_to(
                            context.sine_voltages,
                            (chunk.shape[0], n_samples))
                    codes = batch_quantise_rows(chunk, voltages)
                    power = analyzer.windowed_power(codes)
                    # Vectorised per-tone bookkeeping: the fundamental is
                    # located per device as an index vector and every figure
                    # reduces along the bin axis — the scalar analyze_power
                    # is the batch-of-1 wrapper of this same kernel, which
                    # keeps the figures bit-exact.
                    chunks.append(analyzer.analyze_power_batch(
                        power, context.freqs, context.fundamental_hz,
                        context.sample_rate))

                return BatchDynamicResult(
                    n_devices=n_devices,
                    passed=np.concatenate(
                        [spec.passes_batch(c) for c in chunks]),
                    enob=np.concatenate([c.enob for c in chunks]),
                    sinad_db=np.concatenate([c.sinad_db for c in chunks]),
                    snr_db=np.concatenate([c.snr_db for c in chunks]),
                    thd_db=np.concatenate([c.thd_db for c in chunks]),
                    sfdr_db=np.concatenate([c.sfdr_db for c in chunks]),
                    spec=spec,
                    fundamental_hz=context.fundamental_hz,
                    samples_taken=n_samples,
                    n_bits=context.n_bits)

    def merge(self, shard_results: Sequence[BatchDynamicResult]
              ) -> BatchDynamicResult:
        """Combine per-shard results (in shard order) into one result."""
        with current_telemetry().span("engine.dynamic.merge",
                                      shards=len(shard_results)):
            return BatchDynamicResult.merge(shard_results)
