"""Metrics export: schema-versioned JSON documents and the campaign pivot.

:func:`metrics_document` renders a :class:`~repro.telemetry.core.Telemetry`
collector as a plain dict with a hard determinism contract:

* ``schema``, ``context`` and ``counters`` depend only on *work done* —
  they are byte-identical for any execution plan (workers, chunk size,
  warm or cold worker pool).
* everything wall-clock **or scheduling-dependent** — timers, spans,
  worker identities, gauges, and the pool lifecycle counters — is
  isolated under the single ``timing`` key, so CI can diff two runs'
  documents after dropping that one block.

The pool telemetry added with the persistent
:class:`~repro.production.pool.WorkerPool` lives entirely inside
``timing`` because its values describe *how* the run was scheduled, not
what work was done:

``timing.scheduling``
    Counters whose names start with ``pool.`` —
    ``pool.workers_spawned`` (processes forked; zero on a warm pool),
    ``pool.tasks_dispatched`` (tasks sent to worker processes) and
    ``pool.tasks_reused_worker`` (tasks that landed on a worker which
    had already executed at least one task — the dispatch-reuse rate of
    the persistent pool).  These vary with the worker count and pool
    warmth by definition, so they must not pollute the deterministic
    top-level ``counters`` block.
``timing.gauges``
    :class:`~repro.telemetry.core.GaugeStat` last/peak levels, e.g.
    ``pool.queue_depth`` — how deep the shared work queue got while
    scenario threads interleaved their shards into one pool.

Shared-memory traffic shows up as ``pool.shm_attach`` spans (one per
worker per segment, under that worker's shard span) and a parent-side
``pool.shm_detach`` span when the owning buffer unlinks.

The streaming service (``repro serve``) counts its request stream under
``serve.*`` in the deterministic ``counters`` block — they describe the
work stream, not the scheduling geometry: ``serve.requests`` /
``serve.results`` / ``serve.devices`` (accepted requests, completed
screenings and their devices), ``serve.errors`` (malformed lines and
failed screenings), ``serve.clients`` (TCP connections served),
``serve.resumed`` (requests replayed from a checkpoint journal),
``serve.excursions`` (wafer-level excursion aborts reported by finished
requests, each also emitted as its own ``excursion`` event),
``serve.shutdowns`` (shutdown commands honoured) and
``serve.pool_broken`` (requests that exhausted their pool-rebuild
retries).  Each request also opens a ``serve.request`` span with the
screening's ``campaign.scenario`` span nested beneath it.  The pool
failure path itself stays under the ``pool.`` prefix (and therefore
``timing.scheduling``): ``pool.broken`` (a worker died and the pool was
evicted) and ``pool.rebuilt`` (a submission retried against a fresh
pool).

The kernel-backend seam (:mod:`repro.core.backend`) adds two families of
keys:

``counters`` → ``kernel.<backend>.*``
    ``kernel.<backend>.shards`` / ``kernel.<backend>.devices`` — shards
    and devices each engine ran under backend ``<backend>`` (``numpy``,
    ``numpy-compact`` or ``numba``).  They live in the deterministic
    ``counters`` block: the backend is part of *what ran*, pinned on the
    shard context, so the counts are byte-identical for any execution
    geometry under a fixed backend choice.
``context`` → ``kernel.backend``
    The CLI records the resolved backend name (``--backend`` flag, else
    the ``REPRO_KERNEL_BACKEND`` environment variable, else ``numpy``)
    in the deterministic ``context`` block.

Equivalence tiers, for readers diffing documents across backends:
``numpy`` and ``numpy-compact`` are **bit-exact** on integer outputs
(compaction narrows dtypes, never values), so their ``counters`` blocks
match except for the ``kernel.<backend>.*`` names themselves; ``numba``
is a **tolerance** backend (JIT loops may re-associate float sums,
``atol`` on the registered backend), so float-derived counters may
legitimately differ in the last ulp.

The adaptive test flows (:mod:`repro.flows`) count under ``flow.*`` in
the deterministic ``counters`` block — the sequential station's
decisions and the wafer-level SPC verdicts depend only on the drawn
population, never on the execution geometry:

``flow.saved_samples``
    Per-code observations the SPRT stations skipped relative to the
    fixed full-length test (the paper's tester-time currency).
``flow.devices_stopped_early``
    Devices whose SPRT crossed a Wald boundary before the last code.
``flow.stop_quartile.q1`` … ``flow.stop_quartile.q4``
    Histogram of SPRT stop positions by quartile of the code axis — the
    deterministic stand-in for a stop-time distribution (q1 = stopped in
    the first quarter of the codes).
``flow.excursions_detected`` / ``flow.excursions_missed``
    Wafers the SPC monitor aborted, and excursed wafers it let finish.
``flow.aborted_devices``
    Devices left untested (and rejected) on aborted wafers.

:class:`MetricsReport` is the operator-facing pivot next to
:meth:`~repro.production.store.ResultStore.campaign_table`: one row per
scenario with throughput, escapes and cost, built purely from screening
reports so it carries no wall-clock noise.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional

from repro.reporting.tables import format_table
from repro.telemetry.core import SCHEMA_VERSION, Telemetry

__all__ = [
    "MetricsReport",
    "metrics_document",
    "render_metrics",
    "write_metrics",
]


#: Counter-name prefixes that describe scheduling rather than work done;
#: routed under ``timing.scheduling`` to keep the top-level ``counters``
#: block byte-identical across execution geometries.
SCHEDULING_COUNTER_PREFIXES = ("pool.",)


def metrics_document(telemetry: Telemetry,
                     context: Optional[Mapping[str, Any]] = None
                     ) -> Dict[str, Any]:
    """Render a collector as the ``repro.metrics/1`` document."""
    counters: Dict[str, int] = {}
    scheduling: Dict[str, int] = {}
    for name in sorted(telemetry.counters):
        target = (scheduling
                  if name.startswith(SCHEDULING_COUNTER_PREFIXES)
                  else counters)
        target[name] = telemetry.counters[name]
    gauges = getattr(telemetry, "gauges", {})
    timing: Dict[str, Any] = {
        "timers": {name: telemetry.timers[name].as_dict()
                   for name in sorted(telemetry.timers)},
        "gauges": {name: gauges[name].as_dict()
                   for name in sorted(gauges)},
        "scheduling": scheduling,
        "spans": [span.as_dict() for span in telemetry.spans],
    }
    return {
        "schema": SCHEMA_VERSION,
        "context": dict(context or {}),
        "counters": counters,
        "timing": timing,
    }


def render_metrics(document: Dict[str, Any]) -> str:
    """Serialise a metrics document with deterministic key order."""
    return json.dumps(document, indent=2, sort_keys=True)


def write_metrics(path: str, telemetry: Telemetry,
                  context: Optional[Mapping[str, Any]] = None) -> None:
    """Write the metrics document for ``telemetry`` to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(render_metrics(metrics_document(telemetry, context)))
        handle.write("\n")


@dataclass
class MetricsReport:
    """Per-scenario operational rollup of a campaign run.

    Built from the campaign's screening reports alone (no clocks), so
    the table is deterministic and safe to print in byte-diffed output.
    """

    rows: List[Dict[str, Any]] = field(default_factory=list)

    @classmethod
    def from_reports(cls, labels: List[str],
                     reports_by_label: Mapping[str, List[Any]]
                     ) -> "MetricsReport":
        """Aggregate lot reports (grouped by scenario label) into rows."""
        rows = []
        for label in labels:
            reports = reports_by_label.get(label, [])
            devices = sum(r.n_devices for r in reports)
            accepted = sum(r.n_accepted for r in reports)
            seconds = sum(r.tester_seconds for r in reports)

            def weighted(value) -> float:
                if not devices:
                    return 0.0
                return sum(value(r) * r.n_devices
                           for r in reports) / devices

            rows.append({
                "label": label,
                "lots": len(reports),
                "devices": devices,
                "accepted": accepted,
                "escapes": weighted(lambda r: r.type_ii),
                "yield_loss": weighted(lambda r: r.type_i),
                "tester_seconds": seconds,
                "devices_per_hour": (devices / seconds * 3600.0
                                     if seconds > 0 else float("inf")),
                "cost_per_device": weighted(lambda r: r.cost_per_device),
                "saved_tester_seconds": sum(
                    getattr(r, "saved_tester_seconds", 0.0)
                    for r in reports),
                "aborted": sum(getattr(r, "n_aborted", 0)
                               for r in reports),
            })
        return cls(rows)

    @property
    def total_devices(self) -> int:
        return sum(row["devices"] for row in self.rows)

    @property
    def total_accepted(self) -> int:
        return sum(row["accepted"] for row in self.rows)

    def as_records(self) -> List[Dict[str, Any]]:
        """The rows as plain dicts (stable order), for JSON export."""
        return [dict(row) for row in self.rows]

    def table(self) -> str:
        """The operator pivot, one row per scenario."""
        return format_table(
            ["scenario", "lots", "devices", "accepted", "type I",
             "type II", "tester [s]", "saved [s]", "devices/h",
             "cost/device"],
            [[row["label"], row["lots"], row["devices"], row["accepted"],
              row["yield_loss"], row["escapes"], row["tester_seconds"],
              row.get("saved_tester_seconds", 0.0),
              row["devices_per_hour"], row["cost_per_device"]]
             for row in self.rows],
            title="Campaign metrics per scenario")
