"""Telemetry core: counters, timers and span traces with a strict no-op off state.

The instrumentation seam for the whole production stack.  A single
ambient :class:`Telemetry` object (installed with
:func:`telemetry_session`) collects three kinds of signal:

``counters``
    Monotonic integer totals (devices screened, shards run, event-path
    hits).  Counters record *work done*, never wall-clock, so their
    values are invariant under the execution plan — the same lot sharded
    over 1 or 8 workers produces byte-identical counter blocks.

``timers``
    Named wall-clock accumulators (:class:`TimerStat`: count / total /
    min / max).  Everything non-deterministic lives here.

``spans``
    A parent/child trace (:class:`SpanRecord`) of the run's structure:
    a campaign span contains scenario spans, which contain line and
    engine spans, which contain per-shard spans — possibly absorbed
    from worker processes.

The default ambient object is :data:`NULL_TELEMETRY`, whose methods do
nothing and allocate nothing; library code guards hot loops with
``if t.enabled:`` so the disabled path costs one attribute check.
"""

from __future__ import annotations

import math
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional

__all__ = [
    "SCHEMA_VERSION",
    "NULL_TELEMETRY",
    "GaugeStat",
    "NullTelemetry",
    "SpanRecord",
    "Telemetry",
    "TimerHandle",
    "TimerStat",
    "current_telemetry",
    "telemetry_session",
]

#: Version tag stamped into every metrics document this package emits.
SCHEMA_VERSION = "repro.metrics/1"


@dataclass
class TimerStat:
    """Accumulated wall-clock statistics for one named timer."""

    count: int = 0
    total_s: float = 0.0
    min_s: float = math.inf
    max_s: float = 0.0

    def record(self, elapsed_s: float) -> None:
        self.count += 1
        self.total_s += elapsed_s
        if elapsed_s < self.min_s:
            self.min_s = elapsed_s
        if elapsed_s > self.max_s:
            self.max_s = elapsed_s

    def merge(self, other: "TimerStat") -> None:
        self.count += other.count
        self.total_s += other.total_s
        self.min_s = min(self.min_s, other.min_s)
        self.max_s = max(self.max_s, other.max_s)

    @property
    def mean_s(self) -> float:
        return self.total_s / self.count if self.count else 0.0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "total_s": self.total_s,
            "mean_s": self.mean_s,
            "min_s": self.min_s if self.count else 0.0,
            "max_s": self.max_s,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "TimerStat":
        stat = cls(count=int(data["count"]), total_s=float(data["total_s"]),
                   max_s=float(data["max_s"]))
        if stat.count:
            stat.min_s = float(data["min_s"])
        return stat


@dataclass
class GaugeStat:
    """Last/peak value of one named gauge (e.g. pool queue depth).

    Gauges are *scheduling* observations — how deep the work queue got,
    never how much work was done — so, like timers, they live under the
    ``timing`` block of the metrics document and carry no determinism
    guarantee.
    """

    last: float = 0.0
    max_value: float = -math.inf

    def record(self, value: float) -> None:
        self.last = float(value)
        if value > self.max_value:
            self.max_value = float(value)

    def merge(self, other: "GaugeStat") -> None:
        self.last = other.last
        self.max_value = max(self.max_value, other.max_value)

    def as_dict(self) -> Dict[str, Any]:
        return {"last": self.last,
                "max": self.max_value if self.max_value > -math.inf
                else 0.0}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "GaugeStat":
        return cls(last=float(data["last"]), max_value=float(data["max"]))


@dataclass
class SpanRecord:
    """One node of the trace tree."""

    span_id: int
    name: str
    parent_id: Optional[int]
    elapsed_s: float = 0.0
    attrs: Dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "span_id": self.span_id,
            "name": self.name,
            "parent_id": self.parent_id,
            "elapsed_s": self.elapsed_s,
            "attrs": dict(self.attrs),
        }


class TimerHandle:
    """Context manager handed out by :meth:`Telemetry.timer`.

    Exposes ``elapsed_s`` after the ``with`` block so callers can reuse
    the measurement (e.g. the CLI's elapsed line) without a second
    clock read.
    """

    __slots__ = ("_telemetry", "_name", "_start", "elapsed_s")

    def __init__(self, telemetry: Optional["Telemetry"], name: str) -> None:
        self._telemetry = telemetry
        self._name = name
        self._start = 0.0
        self.elapsed_s = 0.0

    def __enter__(self) -> "TimerHandle":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.elapsed_s = time.perf_counter() - self._start
        if self._telemetry is not None:
            self._telemetry.record_timer(self._name, self.elapsed_s)


class _NullContext:
    """Shared do-nothing context manager for the disabled path."""

    __slots__ = ()
    elapsed_s = 0.0
    span_id: Any = None
    attrs: Dict[str, Any] = {}

    def __enter__(self) -> "_NullContext":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        return None

    def set(self, **attrs: Any) -> None:
        return None


_NULL_CONTEXT = _NullContext()


class NullTelemetry:
    """The disabled telemetry object: stateless, allocation-free no-ops.

    A singleton (:data:`NULL_TELEMETRY`) shared by every uninstrumented
    run.  All mutating methods return immediately; the context-manager
    factories hand back one shared null context.
    """

    __slots__ = ()
    enabled = False
    progress_every = 0

    def count(self, name: str, n: int = 1) -> None:
        return None

    def record_timer(self, name: str, elapsed_s: float) -> None:
        return None

    def set_gauge(self, name: str, value: float) -> None:
        return None

    def timer(self, name: str) -> _NullContext:
        return _NULL_CONTEXT

    def span(self, name: str, **attrs: Any) -> _NullContext:
        return _NULL_CONTEXT

    def under_span(self, span_id: Any) -> _NullContext:
        return _NULL_CONTEXT

    def snapshot(self) -> Dict[str, Any]:
        return {}

    def absorb_worker(self, record: Dict[str, Any],
                      queue_wait_s: float = 0.0) -> None:
        return None


NULL_TELEMETRY = NullTelemetry()


class _SpanHandle:
    """Context manager for an open span on an enabled :class:`Telemetry`."""

    __slots__ = ("_telemetry", "_record", "_start")

    def __init__(self, telemetry: "Telemetry", record: SpanRecord) -> None:
        self._telemetry = telemetry
        self._record = record
        self._start = 0.0

    @property
    def elapsed_s(self) -> float:
        return self._record.elapsed_s

    @property
    def span_id(self) -> int:
        return self._record.span_id

    @property
    def attrs(self) -> Dict[str, Any]:
        return self._record.attrs

    def set(self, **attrs: Any) -> None:
        """Attach attributes to the span while it is open."""
        self._record.attrs.update(attrs)

    def __enter__(self) -> "_SpanHandle":
        self._start = time.perf_counter()
        self._telemetry._stack.append(self._record.span_id)
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self._record.elapsed_s = time.perf_counter() - self._start
        self._telemetry._stack.pop()


class Telemetry:
    """An enabled telemetry collector.

    Parameters
    ----------
    progress_every:
        Emit a progress log line every N shards from the executor
        (0 = never).  Carried here so the executor needs no extra
        plumbing: the ambient telemetry *is* the observability config.
    """

    enabled = True

    def __init__(self, progress_every: int = 0) -> None:
        self.progress_every = int(progress_every)
        self.counters: Dict[str, int] = {}
        self.timers: Dict[str, TimerStat] = {}
        self.gauges: Dict[str, GaugeStat] = {}
        self.spans: List[SpanRecord] = []
        self._lock = threading.RLock()
        self._local = threading.local()
        self._next_span_id = 1

    @property
    def _stack(self) -> List[int]:
        """The *calling thread's* open-span stack.

        Per-thread so campaign scenario threads can nest their own span
        trees concurrently; a new thread starts with an empty stack and
        adopts a parent explicitly via :meth:`under_span`.
        """
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    # ------------------------------------------------------------------ #
    # Recording (thread-safe: shards of several scenario threads may
    # report into one collector concurrently)
    # ------------------------------------------------------------------ #

    def count(self, name: str, n: int = 1) -> None:
        """Add ``n`` to the named counter."""
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + int(n)

    def record_timer(self, name: str, elapsed_s: float) -> None:
        """Fold one measurement into the named :class:`TimerStat`."""
        with self._lock:
            stat = self.timers.get(name)
            if stat is None:
                stat = self.timers[name] = TimerStat()
            stat.record(elapsed_s)

    def set_gauge(self, name: str, value: float) -> None:
        """Record an instantaneous level into the named :class:`GaugeStat`."""
        with self._lock:
            stat = self.gauges.get(name)
            if stat is None:
                stat = self.gauges[name] = GaugeStat()
            stat.record(value)

    def timer(self, name: str) -> TimerHandle:
        """Context manager timing one block into the named timer."""
        return TimerHandle(self, name)

    def span(self, name: str, **attrs: Any) -> _SpanHandle:
        """Open a trace span nested under the calling thread's active span."""
        stack = self._stack
        parent = stack[-1] if stack else None
        with self._lock:
            record = SpanRecord(self._next_span_id, name, parent,
                                attrs=dict(attrs))
            self._next_span_id += 1
            self.spans.append(record)
        return _SpanHandle(self, record)

    @contextmanager
    def under_span(self, span_id: Optional[int]) -> Iterator[None]:
        """Adopt an existing span as the calling thread's parent.

        A worker thread starts with an empty span stack; wrapping its
        work in ``with t.under_span(campaign_span.span_id):`` grafts the
        thread's spans under the right parent.  ``None`` is accepted and
        is a no-op (e.g. when the parent span came from a disabled
        telemetry session).
        """
        if span_id is None:
            yield
            return
        stack = self._stack
        stack.append(span_id)
        try:
            yield
        finally:
            stack.pop()

    # ------------------------------------------------------------------ #
    # Cross-process plumbing
    # ------------------------------------------------------------------ #

    def snapshot(self) -> Dict[str, Any]:
        """Serialise this collector for transport back from a worker."""
        with self._lock:
            return {
                "counters": dict(self.counters),
                "timers": {name: stat.as_dict()
                           for name, stat in self.timers.items()},
                "gauges": {name: stat.as_dict()
                           for name, stat in self.gauges.items()},
                "spans": [span.as_dict() for span in self.spans],
            }

    def absorb_worker(self, record: Dict[str, Any],
                      queue_wait_s: float = 0.0) -> None:
        """Merge a worker's :meth:`snapshot` into this collector.

        Counters add, timers and gauges merge, and the worker's span
        forest is grafted under the *calling thread's* active span with
        fresh ids.  The measured pool queue wait (submit-to-start, on
        the shared system monotonic clock) lands in the
        ``executor.queue_wait`` timer.
        """
        stack = self._stack
        parent = stack[-1] if stack else None
        with self._lock:
            for name, value in record.get("counters", {}).items():
                self.counters[name] = self.counters.get(name, 0) \
                    + int(value)
            for name, data in record.get("timers", {}).items():
                stat = self.timers.get(name)
                if stat is None:
                    self.timers[name] = TimerStat.from_dict(data)
                else:
                    stat.merge(TimerStat.from_dict(data))
            for name, data in record.get("gauges", {}).items():
                stat = self.gauges.get(name)
                if stat is None:
                    self.gauges[name] = GaugeStat.from_dict(data)
                else:
                    stat.merge(GaugeStat.from_dict(data))
            id_map: Dict[int, int] = {}
            for span in record.get("spans", []):
                new_id = self._next_span_id
                self._next_span_id += 1
                id_map[span["span_id"]] = new_id
                mapped_parent = (id_map.get(span["parent_id"], parent)
                                 if span["parent_id"] is not None
                                 else parent)
                self.spans.append(SpanRecord(
                    new_id, span["name"], mapped_parent,
                    elapsed_s=span["elapsed_s"],
                    attrs=dict(span["attrs"])))
        if queue_wait_s > 0.0:
            self.record_timer("executor.queue_wait", queue_wait_s)


# ---------------------------------------------------------------------- #
# Ambient session
# ---------------------------------------------------------------------- #

_current: Any = NULL_TELEMETRY


def current_telemetry() -> Any:
    """The ambient telemetry object (default: :data:`NULL_TELEMETRY`)."""
    return _current


@contextmanager
def telemetry_session(telemetry: Any) -> Iterator[Any]:
    """Install ``telemetry`` as the ambient collector for a ``with`` block."""
    global _current
    previous = _current
    _current = telemetry
    try:
        yield telemetry
    finally:
        _current = previous
