"""Telemetry: counters, timers and span traces across the production stack.

One instrumentation seam for the whole reproduction.  Install an
enabled :class:`Telemetry` with :func:`telemetry_session` and every
layer below — :class:`~repro.production.execution.ShardExecutor`, the
four batch engines, :class:`~repro.production.line.ScreeningLine` and
:class:`~repro.campaign.driver.Campaign` — reports what it did
(counters), how long it took (timers/spans) and, optionally, periodic
progress lines through the ``repro`` logger hierarchy.  The default
ambient object is :data:`NULL_TELEMETRY`: a strict no-op, so
uninstrumented runs pay nothing and stay bit-identical.
"""

from repro.telemetry.core import (
    NULL_TELEMETRY,
    SCHEMA_VERSION,
    GaugeStat,
    NullTelemetry,
    SpanRecord,
    Telemetry,
    TimerHandle,
    TimerStat,
    current_telemetry,
    telemetry_session,
)
from repro.telemetry.log import ShardProgress, configure_logging, get_logger
from repro.telemetry.metrics import (
    MetricsReport,
    metrics_document,
    render_metrics,
    write_metrics,
)

__all__ = [
    "NULL_TELEMETRY",
    "SCHEMA_VERSION",
    "GaugeStat",
    "MetricsReport",
    "NullTelemetry",
    "ShardProgress",
    "SpanRecord",
    "Telemetry",
    "TimerHandle",
    "TimerStat",
    "configure_logging",
    "current_telemetry",
    "get_logger",
    "metrics_document",
    "render_metrics",
    "telemetry_session",
    "write_metrics",
]
