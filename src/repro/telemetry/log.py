"""Logging surface: the ``repro`` logger hierarchy and shard progress.

All run-time chatter goes through stdlib :mod:`logging` under one
hierarchy so a host application can tune it with standard tools::

    repro               root of the hierarchy
    repro.executor      shard dispatch and progress lines
    repro.engine        engine prepare/run/merge events
    repro.line          screening-line station summaries
    repro.campaign      per-scenario campaign progress

:class:`ShardProgress` scales the misoc BIST driver's idiom — a poll
loop streaming rolling error counters per sector — up to the process
pool: every N completed shards it logs shards done/total and a rolling
devices/sec figure.
"""

from __future__ import annotations

import logging
import time
from typing import Optional, Sequence

__all__ = [
    "ShardProgress",
    "configure_logging",
    "get_logger",
]

ROOT_LOGGER = "repro"


def get_logger(name: str = "") -> logging.Logger:
    """A logger in the ``repro`` hierarchy (``get_logger('executor')``)."""
    return logging.getLogger(f"{ROOT_LOGGER}.{name}" if name else ROOT_LOGGER)


def configure_logging(verbose: bool = False,
                      stream=None) -> logging.Logger:
    """Attach a handler to the ``repro`` root logger for CLI runs.

    Idempotent: an existing repro handler is reused, so repeated CLI
    invocations in one process (the test suite) do not stack handlers.
    Library users should ignore this and configure logging themselves.
    """
    logger = logging.getLogger(ROOT_LOGGER)
    logger.setLevel(logging.INFO if verbose else logging.WARNING)
    if not logger.handlers:
        handler = logging.StreamHandler(stream)
        handler.setFormatter(
            logging.Formatter("%(name)s: %(message)s"))
        logger.addHandler(handler)
        logger.propagate = False
    return logger


class ShardProgress:
    """Rolling progress reporter for a sharded run.

    Parameters
    ----------
    n_shards:
        Total shards in the run.
    every:
        Log every ``every`` completed shards (and once at the end).
        ``0`` disables the reporter entirely.
    task_sizes:
        Devices per shard, indexed by shard number; used for the
        rolling devices/sec figure.  Optional — without it the line
        reports shards only.
    """

    def __init__(self, n_shards: int, every: int,
                 task_sizes: Optional[Sequence[int]] = None,
                 logger: Optional[logging.Logger] = None) -> None:
        self.n_shards = int(n_shards)
        self.every = int(every)
        self.task_sizes = task_sizes
        self.logger = logger if logger is not None else get_logger("executor")
        self.done = 0
        self.devices_done = 0
        self._start = time.perf_counter()

    @property
    def active(self) -> bool:
        return self.every > 0 and self.n_shards > 0

    def step(self, shard_index: int) -> None:
        """Record one completed shard, logging on the cadence."""
        self.done += 1
        if self.task_sizes is not None:
            self.devices_done += int(self.task_sizes[shard_index])
        if self.done % self.every and self.done != self.n_shards:
            return
        elapsed = time.perf_counter() - self._start
        rate = self.devices_done / elapsed if elapsed > 0 else 0.0
        if self.task_sizes is not None:
            self.logger.info(
                "shard %d/%d done, %d devices, %.0f devices/s rolling",
                self.done, self.n_shards, self.devices_done, rate)
        else:
            self.logger.info("shard %d/%d done", self.done, self.n_shards)
