"""Static transfer-function representation for A/D converters.

The statistical theory in the paper is expressed entirely in terms of the
*transition voltages* ``T[k]`` of the converter (the input voltage at which the
output code changes from ``k-1`` to ``k``) and the *code widths*
``dV[k] = T[k+1] - T[k]``.  This module provides an explicit, immutable-ish
representation of a static transfer curve together with the usual figures of
merit derived from it (offset, gain error, DNL, INL, missing codes,
monotonicity).

Conventions
-----------

* An ``n``-bit converter produces codes ``0 .. 2**n - 1``.
* There are ``2**n - 1`` transition levels ``T[1] .. T[2**n - 1]``; ``T[k]`` is
  the input voltage at which the output changes from code ``k-1`` to code
  ``k``.  Internally they are stored in a NumPy array of length ``2**n - 1``
  where index ``i`` holds ``T[i+1]``.
* There are ``2**n - 2`` *inner* code widths, one per code ``1 .. 2**n - 2``.
  The first and last codes have no defined width (they extend to the rails),
  exactly as in the conventional histogram test where the end bins are
  discarded.
* DNL and INL follow the "end-point" definition used by the paper's histogram
  reference test: the ideal code width (1 LSB) is the average measured inner
  code width, so offset and gain errors do not leak into the linearity
  numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

import numpy as np

__all__ = [
    "TransferFunction",
    "ideal_transitions",
    "code_widths_from_transitions",
    "transitions_from_code_widths",
    "batch_transitions_from_code_widths",
    "batch_dnl_from_transitions",
    "batch_max_dnl",
    "batch_max_inl",
]


def ideal_transitions(n_bits: int, full_scale: float = 1.0,
                      offset: float = 0.0) -> np.ndarray:
    """Return the ideal transition voltages of an ``n_bits`` converter.

    The ideal converter divides the range ``[offset, offset + full_scale]``
    into ``2**n_bits`` equal code bins.  The transition into code ``k`` sits at
    ``offset + k * LSB`` with ``LSB = full_scale / 2**n_bits``.

    Parameters
    ----------
    n_bits:
        Resolution of the converter in bits.  Must be at least 1.
    full_scale:
        Full-scale input range in volts.
    offset:
        Voltage of the bottom of the conversion range.

    Returns
    -------
    numpy.ndarray
        Array of length ``2**n_bits - 1`` holding ``T[1] .. T[2**n_bits - 1]``.
    """
    if n_bits < 1:
        raise ValueError(f"n_bits must be >= 1, got {n_bits}")
    if full_scale <= 0:
        raise ValueError(f"full_scale must be positive, got {full_scale}")
    n_codes = 1 << n_bits
    lsb = full_scale / n_codes
    return offset + lsb * np.arange(1, n_codes)


def code_widths_from_transitions(transitions: np.ndarray) -> np.ndarray:
    """Return the inner code widths given the transition voltages.

    ``widths[i]`` is the width of code ``i + 1``, i.e. ``T[i+2] - T[i+1]``.
    The result has length ``len(transitions) - 1``.
    """
    transitions = np.asarray(transitions, dtype=float)
    if transitions.ndim != 1 or transitions.size < 2:
        raise ValueError("need at least two transition levels")
    return np.diff(transitions)


def transitions_from_code_widths(code_widths: np.ndarray,
                                 first_transition: float = 0.0) -> np.ndarray:
    """Reconstruct transition voltages from inner code widths.

    The inverse of :func:`code_widths_from_transitions` up to the location of
    the first transition, which is supplied by ``first_transition``.
    """
    code_widths = np.asarray(code_widths, dtype=float)
    if code_widths.ndim != 1:
        raise ValueError("code_widths must be one-dimensional")
    transitions = np.empty(code_widths.size + 1, dtype=float)
    transitions[0] = first_transition
    np.cumsum(code_widths, out=transitions[1:])
    transitions[1:] += first_transition
    return transitions


def batch_transitions_from_code_widths(code_widths: np.ndarray,
                                       first_transition: float = 0.0
                                       ) -> np.ndarray:
    """Row-wise :func:`transitions_from_code_widths` for a device batch.

    Parameters
    ----------
    code_widths:
        ``(devices, inner codes)`` matrix of code widths in volts.
    first_transition:
        Location of every device's first transition (the batch models share
        one nominal placement, as :meth:`TransferFunction.from_code_widths`
        does when ``first_transition`` is omitted).

    Returns
    -------
    numpy.ndarray
        ``(devices, inner codes + 1)`` matrix of transition voltages.  Each
        row is bit-identical to what the scalar constructor produces for
        the same width vector, so batch and per-device paths agree exactly.
    """
    code_widths = np.asarray(code_widths, dtype=float)
    if code_widths.ndim != 2:
        raise ValueError("code_widths must be a (devices, codes) matrix")
    n_devices, n_widths = code_widths.shape
    transitions = np.empty((n_devices, n_widths + 1), dtype=float)
    transitions[:, 0] = first_transition
    np.cumsum(code_widths, axis=1, out=transitions[:, 1:])
    transitions[:, 1:] += first_transition
    return transitions


def batch_dnl_from_transitions(transitions: np.ndarray) -> np.ndarray:
    """End-point DNL matrix for a ``(devices, transitions)`` batch, in LSB.

    Row ``d`` equals ``TransferFunction.dnl()`` of device ``d``: the ideal
    width is each device's own average inner code width, so offset and gain
    errors do not leak into the linearity numbers.
    """
    transitions = np.asarray(transitions, dtype=float)
    if transitions.ndim != 2 or transitions.shape[1] < 2:
        raise ValueError("need a (devices, >=2 transitions) matrix")
    widths = np.diff(transitions, axis=1)
    ref = widths.mean(axis=1, keepdims=True)
    return widths / ref - 1.0


def batch_max_dnl(transitions: np.ndarray) -> np.ndarray:
    """Per-device largest |DNL| in LSB (vector over the batch)."""
    return np.abs(batch_dnl_from_transitions(transitions)).max(axis=1)


def batch_max_inl(transitions: np.ndarray) -> np.ndarray:
    """Per-device largest |INL| in LSB (cumulative end-point DNL)."""
    inl = np.cumsum(batch_dnl_from_transitions(transitions), axis=1)
    return np.abs(inl).max(axis=1)


@dataclass
class TransferFunction:
    """Static transfer curve of an A/D converter.

    Parameters
    ----------
    n_bits:
        Resolution of the converter.
    transitions:
        The ``2**n_bits - 1`` transition voltages, monotonically increasing
        for a healthy converter (non-monotonic curves are allowed so that
        faulty devices can be represented).
    full_scale:
        Nominal full-scale range in volts; used to define the ideal LSB for
        absolute (non-end-point) error figures.
    offset_voltage:
        Nominal bottom-of-range voltage.
    """

    n_bits: int
    transitions: np.ndarray
    full_scale: float = 1.0
    offset_voltage: float = 0.0
    _code_widths: Optional[np.ndarray] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        self.transitions = np.asarray(self.transitions, dtype=float)
        expected = (1 << self.n_bits) - 1
        if self.transitions.size != expected:
            raise ValueError(
                f"expected {expected} transition levels for a "
                f"{self.n_bits}-bit converter, got {self.transitions.size}")
        if self.full_scale <= 0:
            raise ValueError("full_scale must be positive")

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #

    @classmethod
    def ideal(cls, n_bits: int, full_scale: float = 1.0,
              offset: float = 0.0) -> "TransferFunction":
        """Return the ideal (perfectly linear) transfer function."""
        return cls(n_bits=n_bits,
                   transitions=ideal_transitions(n_bits, full_scale, offset),
                   full_scale=full_scale,
                   offset_voltage=offset)

    @classmethod
    def from_code_widths(cls, n_bits: int, code_widths: Sequence[float],
                         full_scale: float = 1.0,
                         first_transition: Optional[float] = None,
                         offset: float = 0.0) -> "TransferFunction":
        """Build a transfer function from the inner code widths.

        ``code_widths`` must contain ``2**n_bits - 2`` entries (one per inner
        code).  When ``first_transition`` is omitted the first transition is
        placed at its ideal position (``offset + 1 LSB``).
        """
        widths = np.asarray(code_widths, dtype=float)
        expected = (1 << n_bits) - 2
        if widths.size != expected:
            raise ValueError(
                f"expected {expected} code widths for a {n_bits}-bit "
                f"converter, got {widths.size}")
        lsb = full_scale / (1 << n_bits)
        if first_transition is None:
            first_transition = offset + lsb
        transitions = transitions_from_code_widths(widths, first_transition)
        return cls(n_bits=n_bits, transitions=transitions,
                   full_scale=full_scale, offset_voltage=offset)

    @classmethod
    def from_dnl(cls, n_bits: int, dnl_lsb: Sequence[float],
                 full_scale: float = 1.0,
                 offset: float = 0.0) -> "TransferFunction":
        """Build a transfer function from per-code DNL values (in LSB).

        ``dnl_lsb[i]`` is the DNL of inner code ``i + 1``; the code width is
        ``(1 + dnl_lsb[i]) * LSB``.
        """
        dnl = np.asarray(dnl_lsb, dtype=float)
        lsb = full_scale / (1 << n_bits)
        widths = (1.0 + dnl) * lsb
        return cls.from_code_widths(n_bits, widths, full_scale=full_scale,
                                    offset=offset)

    # ------------------------------------------------------------------ #
    # Basic geometry
    # ------------------------------------------------------------------ #

    @property
    def n_codes(self) -> int:
        """Total number of output codes (``2**n_bits``)."""
        return 1 << self.n_bits

    @property
    def lsb(self) -> float:
        """Ideal LSB size in volts (``full_scale / 2**n_bits``)."""
        return self.full_scale / self.n_codes

    @property
    def code_widths(self) -> np.ndarray:
        """Inner code widths in volts (length ``2**n_bits - 2``)."""
        if self._code_widths is None:
            self._code_widths = code_widths_from_transitions(self.transitions)
        return self._code_widths

    @property
    def code_widths_lsb(self) -> np.ndarray:
        """Inner code widths expressed in ideal LSB."""
        return self.code_widths / self.lsb

    def transition(self, code: int) -> float:
        """Return the transition voltage into ``code`` (1-based code index)."""
        if not 1 <= code <= self.n_codes - 1:
            raise ValueError(
                f"transition index must be in [1, {self.n_codes - 1}],"
                f" got {code}")
        return float(self.transitions[code - 1])

    # ------------------------------------------------------------------ #
    # Conversion
    # ------------------------------------------------------------------ #

    def convert(self, voltages: np.ndarray) -> np.ndarray:
        """Convert input voltages to output codes.

        Uses the stored transition levels: the output code is the number of
        transition levels at or below the input voltage.  Works for scalar or
        array input and is vectorised with :func:`numpy.searchsorted`.  For a
        non-monotonic transfer curve (a faulty device) the behaviour follows a
        thermometer-style count of exceeded transitions, matching how a flash
        converter with a bubble in its thermometer code behaves after a simple
        ones-counting encoder.
        """
        voltages = np.asarray(voltages, dtype=float)
        if np.all(np.diff(self.transitions) >= 0):
            codes = np.searchsorted(self.transitions, voltages, side="right")
        else:
            # Faulty, non-monotonic device: count transitions exceeded.
            codes = (voltages[..., None] >= self.transitions).sum(axis=-1)
        return codes.astype(np.int64)

    def __call__(self, voltages: np.ndarray) -> np.ndarray:
        return self.convert(voltages)

    # ------------------------------------------------------------------ #
    # Figures of merit
    # ------------------------------------------------------------------ #

    def offset_error_lsb(self) -> float:
        """Offset error in LSB: deviation of the first transition from ideal."""
        ideal_first = self.offset_voltage + self.lsb
        return float((self.transitions[0] - ideal_first) / self.lsb)

    def gain_error_lsb(self) -> float:
        """Gain error in LSB over the full transition span.

        Measured as the deviation of the last-minus-first transition span from
        its ideal value of ``(2**n - 2) * LSB``, expressed in LSB.
        """
        span = self.transitions[-1] - self.transitions[0]
        ideal_span = (self.n_codes - 2) * self.lsb
        return float((span - ideal_span) / self.lsb)

    def dnl(self, endpoint: bool = True) -> np.ndarray:
        """Differential non-linearity per inner code, in LSB.

        Parameters
        ----------
        endpoint:
            When true (default, and what the paper's histogram reference test
            does) the ideal code width is taken as the *average* measured
            inner code width, removing gain error from the DNL figure.  When
            false the nominal LSB (``full_scale / 2**n``) is used instead.
        """
        widths = self.code_widths
        ref = widths.mean() if endpoint else self.lsb
        return widths / ref - 1.0

    def inl(self, endpoint: bool = True) -> np.ndarray:
        """Integral non-linearity per transition, in LSB.

        Computed, as in the paper's LSB processing block, by accumulating the
        DNL values from the first inner code.  The result has one entry per
        inner code; ``inl()[i]`` is the INL at the transition *after* code
        ``i + 1``.
        """
        return np.cumsum(self.dnl(endpoint=endpoint))

    def max_dnl(self, endpoint: bool = True) -> float:
        """Largest absolute DNL in LSB."""
        return float(np.max(np.abs(self.dnl(endpoint=endpoint))))

    def max_inl(self, endpoint: bool = True) -> float:
        """Largest absolute INL in LSB."""
        return float(np.max(np.abs(self.inl(endpoint=endpoint))))

    def has_missing_codes(self, threshold_lsb: float = 0.05) -> bool:
        """True if any inner code is narrower than ``threshold_lsb`` LSB."""
        return bool(np.any(self.code_widths_lsb < threshold_lsb))

    def missing_codes(self, threshold_lsb: float = 0.05) -> np.ndarray:
        """Return the inner code numbers narrower than ``threshold_lsb`` LSB."""
        narrow = np.nonzero(self.code_widths_lsb < threshold_lsb)[0]
        return narrow + 1

    def is_monotonic(self) -> bool:
        """True when every transition level is at or above its predecessor."""
        return bool(np.all(np.diff(self.transitions) >= 0.0))

    def meets_spec(self, dnl_spec_lsb: float, inl_spec_lsb: float,
                   endpoint: bool = True) -> bool:
        """True when both |DNL| and |INL| stay within the given limits."""
        return (self.max_dnl(endpoint=endpoint) <= dnl_spec_lsb
                and self.max_inl(endpoint=endpoint) <= inl_spec_lsb)

    # ------------------------------------------------------------------ #
    # Manipulation
    # ------------------------------------------------------------------ #

    def with_transitions(self, transitions: np.ndarray) -> "TransferFunction":
        """Return a copy of this transfer function with new transitions."""
        return TransferFunction(n_bits=self.n_bits,
                                transitions=np.asarray(transitions, float),
                                full_scale=self.full_scale,
                                offset_voltage=self.offset_voltage)

    def shifted(self, offset_volts: float) -> "TransferFunction":
        """Return a copy with every transition shifted by ``offset_volts``."""
        return self.with_transitions(self.transitions + offset_volts)

    def scaled(self, gain: float) -> "TransferFunction":
        """Return a copy with the transfer curve scaled about the range bottom."""
        if gain <= 0:
            raise ValueError("gain must be positive")
        pivot = self.offset_voltage
        return self.with_transitions(pivot + (self.transitions - pivot) * gain)

    def copy(self) -> "TransferFunction":
        """Deep copy of this transfer function."""
        return self.with_transitions(self.transitions.copy())

    # ------------------------------------------------------------------ #
    # Dunder helpers
    # ------------------------------------------------------------------ #

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TransferFunction):
            return NotImplemented
        return (self.n_bits == other.n_bits
                and self.full_scale == other.full_scale
                and self.offset_voltage == other.offset_voltage
                and np.array_equal(self.transitions, other.transitions))

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (f"TransferFunction(n_bits={self.n_bits}, "
                f"full_scale={self.full_scale}, "
                f"max_dnl={self.max_dnl():.3f} LSB, "
                f"max_inl={self.max_inl():.3f} LSB)")
