"""Behavioural model of a flash A/D converter.

The paper validates its BIST theory on 6-bit flash converters.  A flash
converter consists of a resistor string that defines the reference
(transition) voltages and one comparator per transition that compares the
input with its reference.  Two mismatch mechanisms perturb the transition
voltages:

* **resistor mismatch** — each unit resistor deviates from its nominal value
  by a relative error; because the string is ratiometric (the transition
  voltages are normalised by the *total* string resistance), the code widths
  acquire the negative inter-code correlation ``rho = -1/(N-1)`` quoted by
  the paper (Equation (10)),
* **comparator offset** — each comparator adds an input-referred offset to
  its own transition voltage; this contributes to the code-width variance
  without the global normalisation.

The paper's circuit simulations put the resulting code-width standard
deviation between 0.16 and 0.21 LSB; :meth:`FlashADC.from_sigma` constructs a
device whose *population* code-width sigma equals a requested value so that
the Monte-Carlo experiments can be calibrated to the paper's worst case
(0.21 LSB).
"""

from __future__ import annotations

import math
from typing import Optional, Union

import numpy as np

from repro.adc.base import ADC
from repro.adc.transfer import TransferFunction

__all__ = ["FlashADC"]

RngLike = Union[int, np.random.Generator, None]


def _as_rng(rng: RngLike) -> np.random.Generator:
    """Coerce ``rng`` (None, seed or Generator) into a Generator."""
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)


class FlashADC(ADC):
    """A flash converter with resistor-string and comparator mismatch.

    Parameters
    ----------
    n_bits:
        Resolution.  The ladder has ``2**n_bits`` unit resistors and there
        are ``2**n_bits - 1`` comparators.
    resistor_sigma_rel:
        Relative (fractional) standard deviation of each unit resistor.
    comparator_offset_sigma_lsb:
        Standard deviation of each comparator's input-referred offset, in
        LSB.
    full_scale:
        Reference voltage across the ladder, i.e. the full-scale range.
    sample_rate:
        Sample frequency in Hz.
    rng:
        Seed or :class:`numpy.random.Generator` used to draw this particular
        device's mismatch realisation.  Two devices built with different
        seeds are two different dies from the same process.
    """

    def __init__(self, n_bits: int,
                 resistor_sigma_rel: float = 0.0,
                 comparator_offset_sigma_lsb: float = 0.0,
                 full_scale: float = 1.0,
                 sample_rate: float = 1e6,
                 rng: RngLike = None) -> None:
        super().__init__(n_bits, full_scale, sample_rate)
        if resistor_sigma_rel < 0:
            raise ValueError("resistor_sigma_rel must be non-negative")
        if comparator_offset_sigma_lsb < 0:
            raise ValueError("comparator_offset_sigma_lsb must be non-negative")

        self.resistor_sigma_rel = float(resistor_sigma_rel)
        self.comparator_offset_sigma_lsb = float(comparator_offset_sigma_lsb)

        generator = _as_rng(rng)
        n_resistors = self.n_codes
        # Unit resistors, nominal value 1, with relative mismatch.
        self.resistors = 1.0 + generator.normal(
            0.0, self.resistor_sigma_rel, size=n_resistors)
        # Guard against a (vanishingly unlikely) non-physical negative value.
        np.clip(self.resistors, 1e-6, None, out=self.resistors)
        # Comparator input-referred offsets in volts.
        self.comparator_offsets = generator.normal(
            0.0, self.comparator_offset_sigma_lsb * self.lsb,
            size=self.n_codes - 1)

        self._tf = self._build_transfer()

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #

    @classmethod
    def from_sigma(cls, n_bits: int, sigma_code_width_lsb: float,
                   comparator_fraction: float = 0.0,
                   full_scale: float = 1.0,
                   sample_rate: float = 1e6,
                   rng: RngLike = None,
                   seed: Optional[int] = None) -> "FlashADC":
        """Build a device whose population code-width sigma is as requested.

        Parameters
        ----------
        n_bits:
            Resolution.
        sigma_code_width_lsb:
            Target standard deviation of the inner code widths across the
            *population*, in LSB.  The paper uses 0.21 LSB (worst case of the
            0.16–0.21 range found by circuit simulation).
        comparator_fraction:
            Fraction of the code-width *variance* contributed by comparator
            offsets (0 = resistor mismatch only, 1 = comparator offsets
            only).  The paper does not split the two; the default attributes
            everything to the resistor string, which also reproduces the
            ``-1/(N-1)`` correlation of Equation (10).
        rng, seed:
            Device seed; ``seed=`` is an alias accepted for readability.
        """
        if not 0.0 <= comparator_fraction <= 1.0:
            raise ValueError("comparator_fraction must be within [0, 1]")
        if sigma_code_width_lsb < 0:
            raise ValueError("sigma_code_width_lsb must be non-negative")
        if seed is not None and rng is not None:
            raise ValueError("give at most one of rng and seed")
        if seed is not None:
            rng = seed

        var_total = sigma_code_width_lsb ** 2
        var_comp = var_total * comparator_fraction
        var_res = var_total - var_comp

        # A code width picks up the difference of two adjacent comparator
        # offsets, so each offset contributes variance 2*sigma_off^2.
        comparator_sigma_lsb = math.sqrt(var_comp / 2.0) if var_comp else 0.0

        # For a ratiometric ladder of M unit resistors with relative sigma s,
        # the code width in LSB is approximately 1 + e_k - mean(e), whose
        # standard deviation is s * sqrt(1 - 1/M) ~= s.  Invert that.
        n_resistors = 1 << n_bits
        correction = math.sqrt(1.0 - 1.0 / n_resistors)
        resistor_sigma = math.sqrt(var_res) / correction if var_res else 0.0

        return cls(n_bits=n_bits,
                   resistor_sigma_rel=resistor_sigma,
                   comparator_offset_sigma_lsb=comparator_sigma_lsb,
                   full_scale=full_scale,
                   sample_rate=sample_rate,
                   rng=rng)

    def _build_transfer(self) -> TransferFunction:
        """Compute the transition voltages from the mismatch realisation."""
        total = self.resistors.sum()
        # The transition into code k sits at the tap after the k-th resistor,
        # normalised by the total string resistance (ratiometric ladder).
        taps = np.cumsum(self.resistors)[:-1] / total
        transitions = taps * self.full_scale + self.comparator_offsets
        return TransferFunction(n_bits=self.n_bits, transitions=transitions,
                                full_scale=self.full_scale)

    # ------------------------------------------------------------------ #
    # ADC interface
    # ------------------------------------------------------------------ #

    def transfer_function(self) -> TransferFunction:
        """Return the static transfer curve of this mismatch realisation."""
        return self._tf

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    def ladder_taps(self) -> np.ndarray:
        """Return the normalised ladder tap voltages (before offsets)."""
        return np.cumsum(self.resistors)[:-1] / self.resistors.sum()

    def expected_code_width_sigma_lsb(self) -> float:
        """Analytic population sigma of the code widths, in LSB.

        Combines the ratiometric resistor contribution (with the
        ``sqrt(1 - 1/M)`` correction) and the comparator-offset contribution
        (factor 2 because a width is a difference of two offsets).
        """
        n_resistors = self.n_codes
        var_res = (self.resistor_sigma_rel ** 2) * (1.0 - 1.0 / n_resistors)
        var_comp = 2.0 * self.comparator_offset_sigma_lsb ** 2
        return math.sqrt(var_res + var_comp)

    def expected_width_correlation(self) -> float:
        """Analytic correlation between two different code widths.

        For a purely ratiometric ladder this is ``-1/(M-1)`` with ``M`` the
        number of unit resistors — Equation (10) of the paper.  Comparator
        offsets only correlate *adjacent* widths; for the "generic pair"
        correlation reported here they are treated as uncorrelated mass in
        the denominator.
        """
        n_resistors = self.n_codes
        var_res = (self.resistor_sigma_rel ** 2) * (1.0 - 1.0 / n_resistors)
        var_comp = 2.0 * self.comparator_offset_sigma_lsb ** 2
        if var_res + var_comp == 0.0:
            return 0.0
        cov_res = -(self.resistor_sigma_rel ** 2) / n_resistors
        return cov_res / (var_res + var_comp)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (f"FlashADC(n_bits={self.n_bits}, "
                f"resistor_sigma_rel={self.resistor_sigma_rel:.4f}, "
                f"comparator_offset_sigma_lsb="
                f"{self.comparator_offset_sigma_lsb:.4f})")
