"""Ideal and fixed-transfer-curve converter models.

:class:`IdealADC` is the golden reference used throughout the test suite and
the benchmark harness: perfectly uniform code widths, zero offset and gain
error.  :class:`TableADC` wraps an arbitrary, explicitly supplied
:class:`~repro.adc.transfer.TransferFunction`, which is how faulty devices
produced by :mod:`repro.adc.faults` and devices drawn from a Monte-Carlo
population are represented as converters.
"""

from __future__ import annotations

from typing import Optional

from repro.adc.base import ADC
from repro.adc.transfer import TransferFunction

__all__ = ["IdealADC", "TableADC"]


class IdealADC(ADC):
    """A perfectly linear A/D converter.

    Every inner code is exactly 1 LSB wide; offset and gain errors are zero.
    Useful as a golden reference and for sanity-checking test algorithms
    (the BIST and the histogram test must both pass it with any reasonable
    specification).
    """

    def __init__(self, n_bits: int, full_scale: float = 1.0,
                 sample_rate: float = 1e6) -> None:
        super().__init__(n_bits, full_scale, sample_rate)
        self._tf = TransferFunction.ideal(n_bits, full_scale)

    def transfer_function(self) -> TransferFunction:
        """Return the ideal transfer function (cached)."""
        return self._tf


class TableADC(ADC):
    """A converter defined entirely by an explicit transfer function.

    This is the work-horse representation for:

    * devices drawn from a :class:`~repro.adc.population.DevicePopulation`,
    * devices with injected faults (:mod:`repro.adc.faults`),
    * devices reconstructed from recorded transition levels.
    """

    def __init__(self, transfer: TransferFunction,
                 sample_rate: float = 1e6,
                 name: Optional[str] = None) -> None:
        super().__init__(transfer.n_bits, transfer.full_scale, sample_rate)
        self._tf = transfer
        #: Optional human-readable device label (e.g. "device 17 of batch A").
        self.name = name

    def transfer_function(self) -> TransferFunction:
        """Return the wrapped transfer function."""
        return self._tf

    def with_transfer(self, transfer: TransferFunction) -> "TableADC":
        """Return a new :class:`TableADC` sharing rate/name but a new curve."""
        return TableADC(transfer, sample_rate=self.sample_rate, name=self.name)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        label = f", name={self.name!r}" if self.name else ""
        return (f"TableADC(n_bits={self.n_bits}, "
                f"max_dnl={self.max_dnl():.3f} LSB{label})")
