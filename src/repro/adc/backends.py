"""Pluggable vectorised transfer-function backends for device populations.

The production subsystem holds its devices as *parameter matrices* — one
transition-voltage row per die — instead of per-die Python objects.  PR 1
could only draw such matrices for the flash ladder
(:func:`~repro.adc.population.correlated_code_widths`); this module makes
the draw pluggable, so :class:`~repro.production.lot.Wafer` and
:class:`~repro.adc.population.DevicePopulation` can realise whole wafers of
flash, SAR or pipeline converters in a handful of array operations.

Each backend vectorises the mismatch model of the corresponding scalar
converter class over the device axis:

* :class:`FlashLadderBackend` — the ratiometric resistor-ladder statistics
  of :class:`~repro.adc.flash.FlashADC` (code-width sigma 0.16–0.21 LSB,
  pairwise correlation ``-1/(N-1)`` of Equation (10)), drawn directly as a
  correlated code-width matrix.
* :class:`SarWeightBackend` — the binary-weighted capacitor mismatch of
  :class:`~repro.adc.sar.SarADC` (unit-capacitor sigma scaling as
  ``1/sqrt(weight)``), plus an optional per-die comparator offset.
* :class:`PipelineStageBackend` — the 1.5-bit/stage gain and threshold
  errors of :class:`~repro.adc.pipeline.PipelineADC`, digitising a dense
  shared sweep for every die at once and extracting the transition levels
  from per-die code histograms.

A single-device draw reproduces the scalar model's transfer curve for the
same seed (the SAR and pipeline backends consume the generator in the same
order as the scalar constructors), and any row can be wrapped in a
:class:`~repro.adc.ideal.TableADC` for the scalar engines — bit-identical
to the matrix the batch engines decide on.
"""

from __future__ import annotations

import abc
from typing import Union

import numpy as np

from repro.adc.transfer import batch_transitions_from_code_widths

__all__ = [
    "TransferBackend",
    "FlashLadderBackend",
    "SarWeightBackend",
    "PipelineStageBackend",
    "ARCHITECTURES",
    "make_backend",
]

RngLike = Union[int, np.random.Generator, None]

#: Devices digitised per chunk by the pipeline backend (the dense sweep
#: needs a (devices, codes * oversample) float matrix).
_PIPELINE_CHUNK = 512


def _as_rng(rng: RngLike) -> np.random.Generator:
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)


class TransferBackend(abc.ABC):
    """One converter architecture's vectorised transition-matrix draw."""

    #: Architecture name the backend registers under.
    name: str = ""

    def __init__(self, n_bits: int, full_scale: float = 1.0) -> None:
        if n_bits < 2:
            raise ValueError("n_bits must be >= 2")
        if full_scale <= 0:
            raise ValueError("full_scale must be positive")
        self.n_bits = int(n_bits)
        self.full_scale = float(full_scale)

    @property
    def n_codes(self) -> int:
        """Number of output codes per device."""
        return 1 << self.n_bits

    @property
    def lsb(self) -> float:
        """Ideal LSB size in volts."""
        return self.full_scale / self.n_codes

    @abc.abstractmethod
    def draw_transitions(self, n_devices: int,
                         rng: RngLike = None) -> np.ndarray:
        """Draw a ``(n_devices, 2**n_bits - 1)`` transition-voltage matrix."""


class FlashLadderBackend(TransferBackend):
    """The paper's flash converter: correlated code-width statistics.

    Draws the inner code widths from the uniform-correlation Gaussian model
    the resistor ladder produces and accumulates them into transition
    voltages — exactly the draw :meth:`repro.production.lot.Wafer.draw`
    performed before backends existed, so seeded wafers are unchanged.
    """

    name = "flash"

    def __init__(self, n_bits: int, full_scale: float = 1.0,
                 sigma_code_width_lsb: float = 0.21,
                 rho: Union[float, None] = None) -> None:
        super().__init__(n_bits, full_scale)
        if sigma_code_width_lsb < 0:
            raise ValueError("sigma_code_width_lsb must be non-negative")
        self.sigma_code_width_lsb = float(sigma_code_width_lsb)
        self.rho = rho

    def draw_transitions(self, n_devices: int,
                         rng: RngLike = None) -> np.ndarray:
        # Imported here to avoid a cycle: population.py imports this module.
        from repro.adc.population import correlated_code_widths
        widths_lsb = correlated_code_widths(
            n_devices, self.n_codes - 2, self.sigma_code_width_lsb,
            rho=self.rho, rng=rng)
        return batch_transitions_from_code_widths(
            widths_lsb * self.lsb, first_transition=self.lsb)


class SarWeightBackend(TransferBackend):
    """SAR converters with binary-weighted capacitor mismatch.

    Vectorises :class:`~repro.adc.sar.SarADC`: every die draws independent
    relative errors for its ``n_bits`` weights (sigma scaling as
    ``1/sqrt(weight)``), the decision levels are the bit-selected partial
    sums of the weights, and an optional per-die comparator offset shifts
    the whole curve.  A one-device draw consumes the generator exactly as
    the scalar constructor does, so row 0 of ``draw_transitions(1, seed)``
    equals ``SarADC(..., rng=seed)``'s transfer curve.
    """

    name = "sar"

    def __init__(self, n_bits: int, full_scale: float = 1.0,
                 unit_cap_sigma_rel: float = 0.06,
                 comparator_offset_sigma_lsb: float = 0.0) -> None:
        super().__init__(n_bits, full_scale)
        if unit_cap_sigma_rel < 0:
            raise ValueError("unit_cap_sigma_rel must be non-negative")
        if comparator_offset_sigma_lsb < 0:
            raise ValueError(
                "comparator_offset_sigma_lsb must be non-negative")
        self.unit_cap_sigma_rel = float(unit_cap_sigma_rel)
        self.comparator_offset_sigma_lsb = float(comparator_offset_sigma_lsb)

    def draw_transitions(self, n_devices: int,
                         rng: RngLike = None) -> np.ndarray:
        if n_devices < 1:
            raise ValueError("n_devices must be >= 1")
        generator = _as_rng(rng)
        n = self.n_bits
        # Nominal binary weights, MSB first: 2**(n-1), ..., 2, 1.
        nominal = 2.0 ** np.arange(n - 1, -1, -1)
        rel_err = generator.normal(0.0, 1.0, size=(n_devices, n))
        rel_err *= self.unit_cap_sigma_rel / np.sqrt(nominal)
        weights = nominal * (1.0 + rel_err)

        codes = np.arange(1, self.n_codes)
        shifts = np.arange(n - 1, -1, -1)
        bits = ((codes[:, None] >> shifts[None, :]) & 1).astype(float)
        # dac_levels[d, c] = sum of die d's weights selected by code c.
        dac_levels = weights @ bits.T
        total = weights.sum(axis=1) + 1.0
        transitions = (dac_levels - 0.5) / total[:, None] * self.full_scale
        if self.comparator_offset_sigma_lsb > 0.0:
            offsets = generator.normal(
                0.0, self.comparator_offset_sigma_lsb * self.lsb,
                size=n_devices)
            transitions = transitions + offsets[:, None]
        return transitions


class PipelineStageBackend(TransferBackend):
    """1.5-bit/stage pipelines with inter-stage gain and threshold errors.

    Vectorises :class:`~repro.adc.pipeline.PipelineADC`: per-die stage
    gains and sub-ADC thresholds are drawn in one call, the whole batch is
    digitised over a dense shared input sweep (64 points per nominal LSB),
    and the transition voltages are read off each die's code histogram —
    the vectorised equivalent of the scalar model's ``searchsorted`` sweep.
    """

    name = "pipeline"

    def __init__(self, n_bits: int, full_scale: float = 1.0,
                 gain_error_sigma: float = 0.03,
                 threshold_sigma_lsb: float = 0.5) -> None:
        if n_bits < 3:
            raise ValueError("the pipeline architecture needs n_bits >= 3")
        super().__init__(n_bits, full_scale)
        if gain_error_sigma < 0:
            raise ValueError("gain_error_sigma must be non-negative")
        if threshold_sigma_lsb < 0:
            raise ValueError("threshold_sigma_lsb must be non-negative")
        self.gain_error_sigma = float(gain_error_sigma)
        self.threshold_sigma_lsb = float(threshold_sigma_lsb)
        self.n_stages = self.n_bits - 2

    def draw_transitions(self, n_devices: int,
                         rng: RngLike = None) -> np.ndarray:
        if n_devices < 1:
            raise ValueError("n_devices must be >= 1")
        generator = _as_rng(rng)
        n_stages = self.n_stages
        gains = 2.0 * (1.0 + generator.normal(
            0.0, self.gain_error_sigma, size=(n_devices, n_stages)))
        thr_sigma = self.threshold_sigma_lsb * self.lsb / self.full_scale
        low = -0.25 + generator.normal(0.0, thr_sigma,
                                       size=(n_devices, n_stages))
        high = +0.25 + generator.normal(0.0, thr_sigma,
                                        size=(n_devices, n_stages))

        transitions = np.empty((n_devices, self.n_codes - 1), dtype=float)
        for lo in range(0, n_devices, _PIPELINE_CHUNK):
            hi = min(lo + _PIPELINE_CHUNK, n_devices)
            transitions[lo:hi] = self._extract_transitions(
                gains[lo:hi], low[lo:hi], high[lo:hi])
        return transitions

    def _extract_transitions(self, gains: np.ndarray, low: np.ndarray,
                             high: np.ndarray) -> np.ndarray:
        """Digitise a dense sweep for one chunk and locate the transitions."""
        n_chunk = gains.shape[0]
        oversample = 64
        n_points = self.n_codes * oversample
        v = np.linspace(0.0, self.full_scale, n_points, endpoint=False)
        x = v / self.full_scale * 2.0 - 1.0

        residue = np.broadcast_to(x, (n_chunk, n_points)).copy()
        acc = np.zeros((n_chunk, n_points))
        for stage in range(self.n_stages):
            d = np.where(residue < low[:, stage, None], -1,
                         np.where(residue >= high[:, stage, None], 1, 0))
            weight = 2.0 ** (self.n_bits - 2 - stage)
            acc += d * weight
            residue = gains[:, stage, None] * (residue - d * 0.5)
        final = np.clip(np.floor((residue + 1.0) * 2.0), 0, 3)
        codes = acc + final + (self.n_codes // 2 - 2)
        codes = np.clip(codes, 0, self.n_codes - 1).astype(np.int64)
        codes = np.maximum.accumulate(codes, axis=1)

        # First sweep index reaching code c = number of points with a
        # smaller code, read from the per-die code histogram — the batched
        # equivalent of the scalar model's searchsorted over the sweep.
        keys = (np.arange(n_chunk)[:, None] * self.n_codes + codes).ravel()
        hist = np.bincount(keys, minlength=n_chunk * self.n_codes)
        hist = hist.reshape(n_chunk, self.n_codes)
        idx = np.cumsum(hist[:, :-1], axis=1)
        return v[np.clip(idx, 0, n_points - 1)]


ARCHITECTURES = ("flash", "sar", "pipeline")


def make_backend(architecture: str, n_bits: int, full_scale: float = 1.0,
                 *,
                 sigma_code_width_lsb: float = 0.21,
                 rho: Union[float, None] = None,
                 unit_cap_sigma_rel: float = 0.06,
                 comparator_offset_sigma_lsb: float = 0.0,
                 gain_error_sigma: float = 0.03,
                 threshold_sigma_lsb: float = 0.5) -> TransferBackend:
    """Build the transfer backend for an architecture name.

    Only the parameters relevant to the selected architecture are used;
    callers (``WaferSpec``/``PopulationSpec``) pass their full parameter
    set and let the backend pick its own.
    """
    if architecture == "flash":
        return FlashLadderBackend(
            n_bits, full_scale,
            sigma_code_width_lsb=sigma_code_width_lsb, rho=rho)
    if architecture == "sar":
        return SarWeightBackend(
            n_bits, full_scale,
            unit_cap_sigma_rel=unit_cap_sigma_rel,
            comparator_offset_sigma_lsb=comparator_offset_sigma_lsb)
    if architecture == "pipeline":
        return PipelineStageBackend(
            n_bits, full_scale,
            gain_error_sigma=gain_error_sigma,
            threshold_sigma_lsb=threshold_sigma_lsb)
    raise ValueError(
        f"unknown architecture {architecture!r}; "
        f"expected one of {ARCHITECTURES}")
