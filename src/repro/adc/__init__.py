"""Behavioural A/D-converter substrate.

This subpackage provides every converter model used by the reproduction:

* :class:`~repro.adc.transfer.TransferFunction` — static transfer-curve
  representation with DNL/INL/offset/gain figures of merit,
* :class:`~repro.adc.ideal.IdealADC` and :class:`~repro.adc.ideal.TableADC`
  — golden reference and explicit-curve converters,
* :class:`~repro.adc.flash.FlashADC` — resistor-string flash converter with
  process mismatch (the paper's device under test),
* :class:`~repro.adc.sar.SarADC` and :class:`~repro.adc.pipeline.PipelineADC`
  — further architectures demonstrating the BIST's architecture independence,
* :mod:`~repro.adc.faults` — gross-defect (spot-defect) injection,
* :class:`~repro.adc.population.DevicePopulation` — reproducible Monte-Carlo
  batches standing in for the paper's measured batch of 364 devices,
* :mod:`~repro.adc.backends` — pluggable vectorised transfer backends that
  draw whole populations of flash, SAR or pipeline transition matrices
  without materialising per-device objects (the substrate the production
  batch engines run on).
"""

from repro.adc.backends import (
    ARCHITECTURES,
    FlashLadderBackend,
    PipelineStageBackend,
    SarWeightBackend,
    TransferBackend,
    make_backend,
)
from repro.adc.base import ADC, ConversionRecord
from repro.adc.faults import (
    FaultDescriptor,
    StuckBitADC,
    inject_gain_error,
    inject_missing_code,
    inject_non_monotonic,
    inject_offset_shift,
    inject_open_resistor,
    inject_shorted_resistor,
    inject_wide_code,
    make_faulty_batch,
)
from repro.adc.flash import FlashADC
from repro.adc.ideal import IdealADC, TableADC
from repro.adc.pipeline import PipelineADC
from repro.adc.population import (
    DevicePopulation,
    PopulationSpec,
    correlated_code_widths,
)
from repro.adc.sar import SarADC
from repro.adc.transfer import (
    TransferFunction,
    batch_dnl_from_transitions,
    batch_max_dnl,
    batch_max_inl,
    batch_transitions_from_code_widths,
    code_widths_from_transitions,
    ideal_transitions,
    transitions_from_code_widths,
)

__all__ = [
    "ADC",
    "ConversionRecord",
    "ARCHITECTURES",
    "FlashLadderBackend",
    "PipelineStageBackend",
    "SarWeightBackend",
    "TransferBackend",
    "make_backend",
    "FaultDescriptor",
    "StuckBitADC",
    "inject_gain_error",
    "inject_missing_code",
    "inject_non_monotonic",
    "inject_offset_shift",
    "inject_open_resistor",
    "inject_shorted_resistor",
    "inject_wide_code",
    "make_faulty_batch",
    "FlashADC",
    "IdealADC",
    "TableADC",
    "PipelineADC",
    "DevicePopulation",
    "PopulationSpec",
    "correlated_code_widths",
    "SarADC",
    "TransferFunction",
    "batch_dnl_from_transitions",
    "batch_max_dnl",
    "batch_max_inl",
    "batch_transitions_from_code_widths",
    "code_widths_from_transitions",
    "ideal_transitions",
    "transitions_from_code_widths",
]
