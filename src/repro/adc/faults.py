"""Catastrophic-fault injection for converter models.

The paper distinguishes *parametric* variation (small, Gaussian-like code
width deviations, the subject of its statistical analysis) from *gross
defects caused by spot defects*, which were screened out of the measured
batch because "these faults will also be detected by the BIST method".  The
functions in this module create the gross-defect devices so that claim can be
exercised: stuck output bits, shorted or open ladder resistors, dead
comparators (missing codes), and broken MSB logic that the on-chip
functionality checker must catch.

Every injector takes a converter (any :class:`repro.adc.base.ADC`) or a
:class:`~repro.adc.transfer.TransferFunction` and returns a new
:class:`~repro.adc.ideal.TableADC` / transfer function; the original object
is never modified.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Union

import numpy as np

from repro.adc.base import ADC
from repro.adc.ideal import TableADC
from repro.adc.transfer import TransferFunction

__all__ = [
    "FaultDescriptor",
    "StuckBitADC",
    "inject_missing_code",
    "inject_wide_code",
    "inject_shorted_resistor",
    "inject_open_resistor",
    "inject_offset_shift",
    "inject_gain_error",
    "inject_non_monotonic",
    "make_faulty_batch",
]


@dataclass(frozen=True)
class FaultDescriptor:
    """A record of which fault was injected into a device.

    Attributes
    ----------
    kind:
        Short machine-readable fault name, e.g. ``"missing_code"``.
    location:
        Code or bit index the fault applies to (when meaningful).
    magnitude:
        Fault magnitude in LSB or as a ratio (fault-kind specific).
    """

    kind: str
    location: Optional[int] = None
    magnitude: Optional[float] = None

    def __str__(self) -> str:
        parts = [self.kind]
        if self.location is not None:
            parts.append(f"at {self.location}")
        if self.magnitude is not None:
            parts.append(f"magnitude {self.magnitude:g}")
        return " ".join(parts)


def _transfer_of(device: Union[ADC, TransferFunction]) -> TransferFunction:
    """Return the transfer function of ``device`` (ADC or transfer curve)."""
    if isinstance(device, TransferFunction):
        return device
    return device.transfer_function()


def _wrap(transfer: TransferFunction, device: Union[ADC, TransferFunction],
          fault: FaultDescriptor) -> TableADC:
    """Wrap a perturbed transfer curve into a named TableADC."""
    sample_rate = getattr(device, "sample_rate", 1e6)
    adc = TableADC(transfer, sample_rate=sample_rate, name=str(fault))
    adc.fault = fault
    return adc


class StuckBitADC(ADC):
    """Wrap a converter so that one output bit is stuck at 0 or 1.

    This is a purely digital fault (broken output latch or bond wire); the
    analog transfer curve is untouched but the observed codes have the bit
    forced.  The paper's on-chip functionality check (the counter clocked by
    the LSB and compared against bits ``q+1 .. MSB``) is what catches this
    class of defect.
    """

    def __init__(self, inner: ADC, bit: int, stuck_value: int) -> None:
        super().__init__(inner.n_bits, inner.full_scale, inner.sample_rate)
        if not 0 <= bit < inner.n_bits:
            raise ValueError(f"bit must be in [0, {inner.n_bits - 1}]")
        if stuck_value not in (0, 1):
            raise ValueError("stuck_value must be 0 or 1")
        self.inner = inner
        self.bit = int(bit)
        self.stuck_value = int(stuck_value)
        self.fault = FaultDescriptor("stuck_bit", location=bit,
                                     magnitude=float(stuck_value))

    def transfer_function(self) -> TransferFunction:
        """Return the *analog* transfer curve (unaffected by the digital fault)."""
        return self.inner.transfer_function()

    def convert(self, voltages, rng=None, transition_noise_lsb=0.0):
        """Convert through the inner ADC, then force the stuck bit."""
        codes = self.inner.convert(voltages, rng=rng,
                                   transition_noise_lsb=transition_noise_lsb)
        mask = 1 << self.bit
        if self.stuck_value:
            return codes | mask
        return codes & ~mask


def inject_missing_code(device: Union[ADC, TransferFunction],
                        code: int) -> TableADC:
    """Collapse inner code ``code`` to zero width (a missing code).

    The transition into ``code + 1`` is pulled down onto the transition into
    ``code``; all other transitions are left in place, so the neighbouring
    code becomes correspondingly wider (charge conservation of the ladder).
    """
    tf = _transfer_of(device)
    if not 1 <= code <= tf.n_codes - 2:
        raise ValueError(f"code must be an inner code in [1, {tf.n_codes - 2}]")
    transitions = tf.transitions.copy()
    transitions[code] = transitions[code - 1]
    fault = FaultDescriptor("missing_code", location=code)
    return _wrap(tf.with_transitions(transitions), device, fault)


def inject_wide_code(device: Union[ADC, TransferFunction], code: int,
                     extra_lsb: float) -> TableADC:
    """Widen inner code ``code`` by ``extra_lsb`` LSB (a DNL spike).

    All transitions above the widened code shift up by the same amount, which
    also perturbs the INL — the classic signature of a resistor short in a
    flash ladder.
    """
    tf = _transfer_of(device)
    if not 1 <= code <= tf.n_codes - 2:
        raise ValueError(f"code must be an inner code in [1, {tf.n_codes - 2}]")
    transitions = tf.transitions.copy()
    transitions[code:] += extra_lsb * tf.lsb
    fault = FaultDescriptor("wide_code", location=code, magnitude=extra_lsb)
    return _wrap(tf.with_transitions(transitions), device, fault)


def inject_shorted_resistor(device: Union[ADC, TransferFunction],
                            code: int) -> TableADC:
    """Short the ladder resistor that defines inner code ``code``.

    A shorted unit resistor removes that code's width entirely and compresses
    the remainder of the curve; modelled as a missing code followed by a
    renormalisation of the curve back onto the full-scale range, which is how
    a ratiometric ladder redistributes the voltage.
    """
    tf = _transfer_of(device)
    if not 1 <= code <= tf.n_codes - 2:
        raise ValueError(f"code must be an inner code in [1, {tf.n_codes - 2}]")
    widths = tf.code_widths.copy()
    removed = widths[code - 1]
    widths[code - 1] = 0.0
    # Ratiometric redistribution: the removed voltage spreads over the rest.
    remaining = widths.sum()
    if remaining > 0:
        widths *= (remaining + removed) / remaining
    perturbed = TransferFunction.from_code_widths(
        tf.n_bits, widths, full_scale=tf.full_scale,
        first_transition=float(tf.transitions[0]),
        offset=tf.offset_voltage)
    fault = FaultDescriptor("shorted_resistor", location=code)
    return _wrap(perturbed, device, fault)


def inject_open_resistor(device: Union[ADC, TransferFunction],
                         code: int, severity_lsb: float = 8.0) -> TableADC:
    """Open (greatly increase) the ladder resistor of inner code ``code``.

    An open unit resistor makes one code enormously wide and squeezes every
    other code; modelled by widening the code by ``severity_lsb`` LSB and
    ratiometrically compressing the rest back into the full-scale range.
    """
    tf = _transfer_of(device)
    if not 1 <= code <= tf.n_codes - 2:
        raise ValueError(f"code must be an inner code in [1, {tf.n_codes - 2}]")
    widths = tf.code_widths.copy()
    widths[code - 1] += severity_lsb * tf.lsb
    total_span = tf.transitions[-1] - tf.transitions[0]
    widths *= total_span / widths.sum()
    perturbed = TransferFunction.from_code_widths(
        tf.n_bits, widths, full_scale=tf.full_scale,
        first_transition=float(tf.transitions[0]),
        offset=tf.offset_voltage)
    fault = FaultDescriptor("open_resistor", location=code,
                            magnitude=severity_lsb)
    return _wrap(perturbed, device, fault)


def inject_offset_shift(device: Union[ADC, TransferFunction],
                        shift_lsb: float) -> TableADC:
    """Shift the whole transfer curve by ``shift_lsb`` LSB (offset fault)."""
    tf = _transfer_of(device)
    fault = FaultDescriptor("offset_shift", magnitude=shift_lsb)
    return _wrap(tf.shifted(shift_lsb * tf.lsb), device, fault)


def inject_gain_error(device: Union[ADC, TransferFunction],
                      gain: float) -> TableADC:
    """Scale the transfer curve by ``gain`` about the bottom of the range."""
    tf = _transfer_of(device)
    fault = FaultDescriptor("gain_error", magnitude=gain)
    return _wrap(tf.scaled(gain), device, fault)


def inject_non_monotonic(device: Union[ADC, TransferFunction],
                         code: int, depth_lsb: float = 1.5) -> TableADC:
    """Make the transfer curve non-monotonic around inner code ``code``.

    The transition into ``code`` is pushed *above* the transition into
    ``code + 1`` by ``depth_lsb`` LSB, as a bubble error in a flash
    thermometer code would do.
    """
    tf = _transfer_of(device)
    if not 1 <= code <= tf.n_codes - 2:
        raise ValueError(f"code must be an inner code in [1, {tf.n_codes - 2}]")
    transitions = tf.transitions.copy()
    transitions[code - 1] = transitions[code] + depth_lsb * tf.lsb
    fault = FaultDescriptor("non_monotonic", location=code,
                            magnitude=depth_lsb)
    return _wrap(tf.with_transitions(transitions), device, fault)


def make_faulty_batch(base: Union[ADC, TransferFunction],
                      rng: Union[int, np.random.Generator, None] = None,
                      kinds: Optional[Sequence[str]] = None,
                      count: int = 10) -> List[TableADC]:
    """Create a batch of devices with assorted gross defects.

    Parameters
    ----------
    base:
        The healthy device (or transfer function) the faults are injected
        into.
    rng:
        Seed or generator selecting fault locations and magnitudes.
    kinds:
        Restrict the fault kinds drawn from; default is every analog kind
        this module knows about.
    count:
        Number of faulty devices to produce.
    """
    generator = (rng if isinstance(rng, np.random.Generator)
                 else np.random.default_rng(rng))
    tf = _transfer_of(base)
    all_kinds = ["missing_code", "wide_code", "shorted_resistor",
                 "open_resistor", "offset_shift", "gain_error",
                 "non_monotonic"]
    kinds = list(kinds) if kinds is not None else all_kinds
    unknown = set(kinds) - set(all_kinds)
    if unknown:
        raise ValueError(f"unknown fault kinds: {sorted(unknown)}")

    batch: List[TableADC] = []
    for _ in range(count):
        kind = kinds[int(generator.integers(len(kinds)))]
        code = int(generator.integers(1, tf.n_codes - 1))
        if kind == "missing_code":
            batch.append(inject_missing_code(base, code))
        elif kind == "wide_code":
            extra = float(generator.uniform(1.5, 4.0))
            batch.append(inject_wide_code(base, code, extra))
        elif kind == "shorted_resistor":
            batch.append(inject_shorted_resistor(base, code))
        elif kind == "open_resistor":
            severity = float(generator.uniform(4.0, 12.0))
            batch.append(inject_open_resistor(base, code, severity))
        elif kind == "offset_shift":
            shift = float(generator.uniform(2.0, 6.0))
            batch.append(inject_offset_shift(base, shift))
        elif kind == "gain_error":
            gain = float(generator.uniform(1.05, 1.2))
            batch.append(inject_gain_error(base, gain))
        else:  # non_monotonic
            depth = float(generator.uniform(1.0, 2.5))
            batch.append(inject_non_monotonic(base, code, depth))
    return batch
