"""Behavioural model of a pipelined A/D converter.

A third converter architecture, included so that the library's examples can
show the BIST methodology operating on converters whose error mechanisms are
inter-stage gain errors rather than per-code mismatch.  The model is a
classic 1.5-bit/stage pipeline with digital error correction:

* each stage resolves 1.5 bits (three decision regions) and passes a residue
  amplified by a nominal gain of 2 to the next stage,
* the stage gain and the two sub-ADC comparator thresholds carry errors,
* a final flash stage resolves the remaining bits.

Gain errors produce the pipeline's characteristic DNL signature: repeated
discontinuities at the stage decision boundaries.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.adc.base import ADC
from repro.adc.transfer import TransferFunction

__all__ = ["PipelineADC"]

RngLike = Union[int, np.random.Generator, None]


class PipelineADC(ADC):
    """A 1.5-bit/stage pipelined converter with gain and threshold errors.

    Parameters
    ----------
    n_bits:
        Overall resolution.  ``n_bits - 2`` pipeline stages of 1.5 bits each
        are followed by a final 2-bit flash; ``n_bits`` must be at least 3.
    gain_error_sigma:
        Relative standard deviation of each stage's residue gain (nominal 2).
    threshold_sigma_lsb:
        Standard deviation of each stage comparator threshold, expressed in
        LSB at the converter input.
    full_scale:
        Full-scale range in volts.
    sample_rate:
        Sample frequency in Hz.
    rng:
        Seed or generator selecting this device's error realisation.
    """

    def __init__(self, n_bits: int,
                 gain_error_sigma: float = 0.0,
                 threshold_sigma_lsb: float = 0.0,
                 full_scale: float = 1.0,
                 sample_rate: float = 1e6,
                 rng: RngLike = None) -> None:
        if n_bits < 3:
            raise ValueError("PipelineADC needs n_bits >= 3")
        super().__init__(n_bits, full_scale, sample_rate)
        if gain_error_sigma < 0:
            raise ValueError("gain_error_sigma must be non-negative")
        if threshold_sigma_lsb < 0:
            raise ValueError("threshold_sigma_lsb must be non-negative")

        self.gain_error_sigma = float(gain_error_sigma)
        self.threshold_sigma_lsb = float(threshold_sigma_lsb)
        self.n_stages = n_bits - 2

        generator = (rng if isinstance(rng, np.random.Generator)
                     else np.random.default_rng(rng))
        self.stage_gains = 2.0 * (1.0 + generator.normal(
            0.0, self.gain_error_sigma, size=self.n_stages))
        # Nominal 1.5-bit thresholds at -1/4 and +1/4 of the stage range.
        thr_sigma = self.threshold_sigma_lsb * self.lsb / self.full_scale
        self.stage_thresholds = np.stack([
            -0.25 + generator.normal(0.0, thr_sigma, size=self.n_stages),
            +0.25 + generator.normal(0.0, thr_sigma, size=self.n_stages),
        ], axis=1)

        self._tf = self._build_transfer()

    # ------------------------------------------------------------------ #
    # Pipeline signal chain
    # ------------------------------------------------------------------ #

    def _digitise(self, x: np.ndarray) -> np.ndarray:
        """Run normalised inputs ``x`` in [-1, 1) through the pipeline.

        Returns raw output codes in ``0 .. 2**n_bits - 1``.  This models the
        standard 1.5-bit/stage architecture with digital error correction:
        stage decisions d in {-1, 0, +1}, residue ``gain * x - d * 0.5 * gain``
        (normalised so an ideal gain of 2 maps the selected third back onto
        the full range), and a final 2-bit flash.
        """
        x = np.asarray(x, dtype=float)
        residue = x.copy()
        # Accumulated output with digital error correction: each stage
        # contributes d * 2**(remaining bits - 1) half-overlapping with the
        # next stage, which is the usual redundancy of the 1.5 bit stage.
        acc = np.zeros_like(residue)
        for stage in range(self.n_stages):
            low, high = self.stage_thresholds[stage]
            d = np.where(residue < low, -1, np.where(residue >= high, 1, 0))
            weight = 2.0 ** (self.n_bits - 2 - stage)
            acc = acc + d * weight
            residue = self.stage_gains[stage] * (residue - d * 0.5)
            # An ideal stage keeps the residue within [-1, 1); a real one may
            # overrange slightly, which the final flash clips — keep it.
        # Final 2-bit flash over [-1, 1).
        final = np.clip(np.floor((residue + 1.0) * 2.0), 0, 3)
        codes = acc + final + (self.n_codes // 2 - 2)
        return np.clip(codes, 0, self.n_codes - 1).astype(np.int64)

    def _build_transfer(self) -> TransferFunction:
        """Extract the static transfer curve by a fine input sweep.

        The pipeline is simulated over a dense ramp (64 points per nominal
        LSB) and the transition voltages are located where the output code
        first reaches each value.  Codes that never appear (missing codes due
        to large gain errors) inherit the next transition, giving them zero
        width, which is exactly how a histogram test would see them.
        """
        oversample = 64
        n_points = self.n_codes * oversample
        v = np.linspace(0.0, self.full_scale, n_points, endpoint=False)
        x = v / self.full_scale * 2.0 - 1.0
        codes = self._digitise(x)
        # Enforce monotonic reading of the sweep: the static transfer curve
        # of the pipeline is monotone in this model, but guard regardless.
        codes = np.maximum.accumulate(codes)
        transitions = np.empty(self.n_codes - 1, dtype=float)
        idx = np.searchsorted(codes, np.arange(1, self.n_codes), side="left")
        idx = np.clip(idx, 0, n_points - 1)
        transitions[:] = v[idx]
        return TransferFunction(n_bits=self.n_bits, transitions=transitions,
                                full_scale=self.full_scale)

    def transfer_function(self) -> TransferFunction:
        """Return the extracted static transfer curve."""
        return self._tf

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (f"PipelineADC(n_bits={self.n_bits}, "
                f"gain_error_sigma={self.gain_error_sigma:.4f})")
