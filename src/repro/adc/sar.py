"""Behavioural model of a successive-approximation (SAR) A/D converter.

The paper's experiments use flash converters, but the BIST methodology itself
is architecture-agnostic: it only observes the digital output codes.  This
model lets the test suite and the examples demonstrate the BIST on a second,
structurally different architecture whose error signature (binary-weighted
capacitor mismatch causing large DNL jumps at major code transitions) is very
unlike the flash converter's (small, nearly independent per-code errors).

Model
-----

An ``n``-bit SAR converter with a binary-weighted capacitive DAC has unit
capacitors grouped into weights ``2**(n-1), ..., 2, 1``.  Each *unit*
capacitor has an independent relative mismatch; a weight's total error is the
sum of its units' errors, so larger weights have proportionally smaller
relative error (the usual ``sigma / sqrt(area)`` matching law).  The decision
levels of the converter are the partial sums of the weights, which is what
:meth:`SarADC.transfer_function` computes.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.adc.base import ADC
from repro.adc.transfer import TransferFunction

__all__ = ["SarADC"]

RngLike = Union[int, np.random.Generator, None]


class SarADC(ADC):
    """A SAR converter with binary-weighted capacitor mismatch.

    Parameters
    ----------
    n_bits:
        Resolution.
    unit_cap_sigma_rel:
        Relative standard deviation of a single unit capacitor.  A weight of
        ``w`` units then has relative sigma ``unit_cap_sigma_rel / sqrt(w)``.
    comparator_offset_lsb:
        A single input-referred comparator offset (the SAR reuses one
        comparator), in LSB; it shifts the whole transfer curve.
    full_scale:
        Full-scale range in volts.
    sample_rate:
        Sample frequency in Hz.
    rng:
        Seed or generator selecting the mismatch realisation of this device.
    """

    def __init__(self, n_bits: int,
                 unit_cap_sigma_rel: float = 0.0,
                 comparator_offset_lsb: float = 0.0,
                 full_scale: float = 1.0,
                 sample_rate: float = 1e6,
                 rng: RngLike = None) -> None:
        super().__init__(n_bits, full_scale, sample_rate)
        if unit_cap_sigma_rel < 0:
            raise ValueError("unit_cap_sigma_rel must be non-negative")

        self.unit_cap_sigma_rel = float(unit_cap_sigma_rel)
        self.comparator_offset_lsb = float(comparator_offset_lsb)

        generator = (rng if isinstance(rng, np.random.Generator)
                     else np.random.default_rng(rng))

        # Nominal binary weights, MSB first: 2**(n-1), ..., 2, 1.
        nominal = 2.0 ** np.arange(n_bits - 1, -1, -1)
        # Relative error of each weight scales as 1/sqrt(number of units).
        rel_err = generator.normal(0.0, 1.0, size=n_bits)
        rel_err *= self.unit_cap_sigma_rel / np.sqrt(nominal)
        self.weights = nominal * (1.0 + rel_err)

        self._tf = self._build_transfer()

    def _build_transfer(self) -> TransferFunction:
        """Derive the transition voltages from the (mismatched) weights.

        The DAC level for code ``k`` is the sum of the weights selected by
        the bits of ``k``, normalised by the total weight plus one ideal unit
        (the usual "+1 LSB" of a binary DAC's range).  The transition into
        code ``k`` is half an ideal LSB below that level, then shifted by the
        comparator offset.
        """
        n_codes = self.n_codes
        codes = np.arange(1, n_codes)
        # Bit matrix: bit j (MSB first) of each code.
        shifts = np.arange(self.n_bits - 1, -1, -1)
        bits = (codes[:, None] >> shifts[None, :]) & 1
        dac_levels = bits @ self.weights
        total = self.weights.sum() + 1.0
        # Transition into code k occurs where the input crosses the DAC level
        # for k minus half a unit (mid-rise behaviour of the SAR search).
        transitions = (dac_levels - 0.5) / total * self.full_scale
        transitions = transitions + self.comparator_offset_lsb * self.lsb
        return TransferFunction(n_bits=self.n_bits, transitions=transitions,
                                full_scale=self.full_scale)

    def transfer_function(self) -> TransferFunction:
        """Return the static transfer curve of this mismatch realisation."""
        return self._tf

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (f"SarADC(n_bits={self.n_bits}, "
                f"unit_cap_sigma_rel={self.unit_cap_sigma_rel:.4f})")
