"""Abstract behavioural A/D converter model.

Every converter in :mod:`repro.adc` — ideal, flash, SAR, pipeline, or a
faulty variant produced by :mod:`repro.adc.faults` — exposes the same small
interface:

* a static :class:`~repro.adc.transfer.TransferFunction` describing its
  transition voltages, and
* a :meth:`ADC.sample` method that converts a voltage waveform into output
  codes at the converter's sample rate, optionally adding input-referred
  (transition) noise so that dynamic effects such as LSB toggling can be
  studied.

The BIST engine and the conventional histogram test both operate purely on
this interface, so any converter model (or a recorded trace from real
hardware) can be dropped in.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.adc.transfer import TransferFunction

__all__ = ["ADC", "ConversionRecord"]


@dataclass
class ConversionRecord:
    """The result of sampling a stimulus with a converter.

    Attributes
    ----------
    codes:
        Output codes, one per sample.
    sample_times:
        Time of each sample in seconds (after jitter, if any).
    input_voltages:
        The analog input voltage seen by the converter at each sample moment
        (after noise), mainly useful for debugging and for computing ideal
        reference codes.
    """

    codes: np.ndarray
    sample_times: np.ndarray
    input_voltages: np.ndarray

    def __len__(self) -> int:
        return int(self.codes.size)

    def bit(self, index: int) -> np.ndarray:
        """Return the waveform of output bit ``index`` (0 = LSB)."""
        if index < 0:
            raise ValueError("bit index must be non-negative")
        return (self.codes >> index) & 1

    @property
    def lsb_waveform(self) -> np.ndarray:
        """The LSB waveform, the signal the paper's BIST monitors."""
        return self.bit(0)


class ADC(abc.ABC):
    """Abstract base class for behavioural A/D converter models."""

    #: Resolution in bits; concrete classes must set this in ``__init__``.
    n_bits: int
    #: Full-scale input range in volts.
    full_scale: float
    #: Sample frequency in Hz.
    sample_rate: float

    def __init__(self, n_bits: int, full_scale: float = 1.0,
                 sample_rate: float = 1e6) -> None:
        if n_bits < 1:
            raise ValueError(f"n_bits must be >= 1, got {n_bits}")
        if full_scale <= 0:
            raise ValueError("full_scale must be positive")
        if sample_rate <= 0:
            raise ValueError("sample_rate must be positive")
        self.n_bits = int(n_bits)
        self.full_scale = float(full_scale)
        self.sample_rate = float(sample_rate)

    # ------------------------------------------------------------------ #
    # Interface
    # ------------------------------------------------------------------ #

    @property
    def n_codes(self) -> int:
        """Number of output codes (``2**n_bits``)."""
        return 1 << self.n_bits

    @property
    def lsb(self) -> float:
        """Ideal LSB size in volts."""
        return self.full_scale / self.n_codes

    @abc.abstractmethod
    def transfer_function(self) -> TransferFunction:
        """Return the static transfer function of this converter."""

    # ------------------------------------------------------------------ #
    # Sampling
    # ------------------------------------------------------------------ #

    def convert(self, voltages: np.ndarray,
                rng: Optional[np.random.Generator] = None,
                transition_noise_lsb: float = 0.0) -> np.ndarray:
        """Convert analog voltages to output codes.

        Parameters
        ----------
        voltages:
            Input voltages, any shape.
        rng:
            Random generator used when ``transition_noise_lsb`` is non-zero.
        transition_noise_lsb:
            Standard deviation of input-referred noise (in LSB) added
            independently to each sample.  This is the "transition noise"
            the paper mentions as the source of LSB toggling.
        """
        voltages = np.asarray(voltages, dtype=float)
        if transition_noise_lsb > 0.0:
            if rng is None:
                rng = np.random.default_rng()
            voltages = voltages + rng.normal(
                0.0, transition_noise_lsb * self.lsb, size=voltages.shape)
        return self.transfer_function().convert(voltages)

    def sample(self, stimulus, duration: Optional[float] = None,
               n_samples: Optional[int] = None,
               clock=None,
               rng: Optional[np.random.Generator] = None,
               transition_noise_lsb: float = 0.0) -> ConversionRecord:
        """Sample a stimulus with this converter.

        Parameters
        ----------
        stimulus:
            An object with a ``voltage(times)`` method (see
            :mod:`repro.signals`), or a plain callable mapping an array of
            times to voltages.
        duration:
            Length of the acquisition in seconds.  Exactly one of
            ``duration`` and ``n_samples`` must be given.
        n_samples:
            Number of samples to take.
        clock:
            Optional :class:`repro.signals.sampling.SamplingClock`; when
            omitted an ideal jitter-free clock at ``self.sample_rate`` is
            used.
        rng:
            Random generator shared by the noise sources.
        transition_noise_lsb:
            Input-referred noise added per sample, in LSB.
        """
        if (duration is None) == (n_samples is None):
            raise ValueError("give exactly one of duration or n_samples")
        if n_samples is None:
            n_samples = int(round(duration * self.sample_rate))
        if n_samples <= 0:
            raise ValueError("the acquisition must contain at least 1 sample")

        if clock is None:
            times = np.arange(n_samples) / self.sample_rate
        else:
            times = clock.sample_times(n_samples, rng=rng)

        voltage_fn = getattr(stimulus, "voltage", stimulus)
        voltages = np.asarray(voltage_fn(times), dtype=float)
        codes = self.convert(voltages, rng=rng,
                             transition_noise_lsb=transition_noise_lsb)
        return ConversionRecord(codes=codes, sample_times=times,
                                input_voltages=voltages)

    # ------------------------------------------------------------------ #
    # Convenience figures of merit (delegate to the transfer function)
    # ------------------------------------------------------------------ #

    def dnl(self) -> np.ndarray:
        """End-point DNL per inner code, in LSB."""
        return self.transfer_function().dnl()

    def inl(self) -> np.ndarray:
        """End-point INL per transition, in LSB."""
        return self.transfer_function().inl()

    def max_dnl(self) -> float:
        """Largest absolute DNL in LSB."""
        return self.transfer_function().max_dnl()

    def max_inl(self) -> float:
        """Largest absolute INL in LSB."""
        return self.transfer_function().max_inl()

    def meets_spec(self, dnl_spec_lsb: float, inl_spec_lsb: float) -> bool:
        """True when the static linearity meets the given DNL and INL specs."""
        return self.transfer_function().meets_spec(dnl_spec_lsb, inl_spec_lsb)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (f"{type(self).__name__}(n_bits={self.n_bits}, "
                f"full_scale={self.full_scale}, "
                f"sample_rate={self.sample_rate:g})")
