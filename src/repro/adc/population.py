"""Monte-Carlo populations of converters with process variation.

The paper's "measurement" column is produced from a physical batch of 364
6-bit flash converters; this module is the substitute substrate: it draws
device *populations* whose code-width statistics match the numbers the paper
reports from circuit simulation —

* code-width standard deviation between 0.16 and 0.21 LSB (the experiments
  use the 0.21 LSB worst case),
* inter-code-width correlation ``rho = -1/(N-1)`` (Equation (10)), which
  arises naturally from the ratiometric resistor ladder.

Every architecture now realises its population through the corresponding
vectorised transfer backend (:mod:`repro.adc.backends`): the whole
population's transition matrix is drawn in one call seeded by the
population seed, and individual devices are materialised as
:class:`~repro.adc.ideal.TableADC` objects wrapping their matrix row —
bit-identical to what the batch engines decide on, without building one
behavioural converter model per device.  ``"flash"`` and ``"gaussian"``
share the :class:`~repro.adc.backends.FlashLadderBackend` statistics (the
correlated-normal model of the ladder, Equation (10)); ``"sar"`` and
``"pipeline"`` use their architecture backends.

The historical per-device-seed draws — one child seed per device, a
Python-loop materialisation, with ``"flash"`` building genuine
:class:`~repro.adc.flash.FlashADC` ladder models — remain available behind
``PopulationSpec(legacy_seed=True)``.  They are **deprecated**: the flag
exists so studies pinned to the old seeded matrices can reproduce them,
and it will be removed once nothing depends on those realisations.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence, Union

import numpy as np

from repro.adc.base import ADC
from repro.adc.flash import FlashADC
from repro.adc.ideal import TableADC
from repro.adc.transfer import (
    TransferFunction,
    batch_transitions_from_code_widths,
)

__all__ = ["PopulationSpec", "DevicePopulation", "correlated_code_widths"]

RngLike = Union[int, np.random.Generator, None]


def _as_rng(rng: RngLike) -> np.random.Generator:
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)


def correlated_code_widths(n_devices: int, n_widths: int,
                           sigma_lsb: float, rho: Optional[float] = None,
                           rng: RngLike = None) -> np.ndarray:
    """Draw code-width matrices (in LSB) with a uniform pairwise correlation.

    Parameters
    ----------
    n_devices:
        Number of devices (rows of the result).
    n_widths:
        Number of inner code widths per device (columns).
    sigma_lsb:
        Standard deviation of each width, in LSB.
    rho:
        Pairwise correlation between any two widths of the same device.
        ``None`` selects the paper's ladder value ``-1/(N-1)`` where ``N`` is
        the number of codes (``n_widths + 2``).  Must satisfy
        ``-1/(n_widths-1) <= rho <= 1`` for the covariance to be positive
        semi-definite.
    rng:
        Seed or generator.

    Returns
    -------
    numpy.ndarray
        Shape ``(n_devices, n_widths)``; entry ``[d, i]`` is the width of
        inner code ``i + 1`` of device ``d`` in LSB (mean 1.0).

    Notes
    -----
    A uniform-correlation Gaussian vector is generated with the standard
    one-factor construction ``x_i = sqrt(rho') * z0 + sqrt(1 - rho') * z_i``
    for non-negative correlation, and with the mean-subtraction construction
    (which yields exactly ``rho = -1/(M-1)`` over ``M`` variables) for the
    negative-correlation case the ladder produces.
    """
    if n_devices < 1 or n_widths < 2:
        raise ValueError("need at least 1 device and 2 code widths")
    if sigma_lsb < 0:
        raise ValueError("sigma_lsb must be non-negative")
    generator = _as_rng(rng)

    n_codes = n_widths + 2
    if rho is None:
        rho = -1.0 / (n_codes - 1)

    if rho < -1.0 / (n_widths - 1) - 1e-12 or rho > 1.0:
        raise ValueError(
            f"rho={rho} is not achievable for {n_widths} jointly distributed"
            f" widths (must be within [-1/{n_widths - 1}, 1])")

    if abs(rho) < 1e-15:
        deviations = generator.normal(0.0, sigma_lsb,
                                      size=(n_devices, n_widths))
    elif rho > 0:
        common = generator.normal(0.0, 1.0, size=(n_devices, 1))
        private = generator.normal(0.0, 1.0, size=(n_devices, n_widths))
        deviations = sigma_lsb * (np.sqrt(rho) * common
                                  + np.sqrt(1.0 - rho) * private)
    else:
        # Negative uniform correlation: draw iid variables and subtract a
        # scaled per-device mean, x_i = z_i - c * mean(z).  The correlation of
        # the result is (c^2 - 2c) / (n - 2c + c^2); solving for c gives
        # c = 1 - sqrt(1 + rho * n / (1 - rho)), which equals 1 (full mean
        # subtraction) at the ladder limit rho = -1/(n-1).
        n = n_widths
        discriminant = max(0.0, 1.0 + rho * n / (1.0 - rho))
        c = 1.0 - np.sqrt(discriminant)
        raw = generator.normal(0.0, 1.0, size=(n_devices, n_widths))
        mean = raw.mean(axis=1, keepdims=True)
        centred = raw - c * mean
        var = 1.0 - 2.0 * c / n + c * c / n
        deviations = sigma_lsb * centred / np.sqrt(var)
    return 1.0 + deviations


@dataclass
class PopulationSpec:
    """Specification of a converter population.

    Attributes
    ----------
    n_bits:
        Converter resolution.
    sigma_code_width_lsb:
        Population standard deviation of the inner code widths, in LSB.  The
        paper's worst case is 0.21 LSB.
    size:
        Number of devices; the paper measured a batch of 364.
    architecture:
        ``"flash"`` builds :class:`~repro.adc.flash.FlashADC` devices;
        ``"gaussian"`` draws code widths directly from the correlated normal
        model the paper's equations assume; ``"sar"`` and ``"pipeline"``
        realise the population through the vectorised transfer backends of
        :mod:`repro.adc.backends`.
    comparator_fraction:
        For the flash architecture, the fraction of the code-width variance
        contributed by comparator offsets (see
        :meth:`repro.adc.flash.FlashADC.from_sigma`).
    unit_cap_sigma_rel, comparator_offset_sigma_lsb:
        SAR-architecture mismatch parameters.
    gain_error_sigma, threshold_sigma_lsb:
        Pipeline-architecture mismatch parameters.
    full_scale:
        Full-scale range in volts.
    sample_rate:
        Sample frequency of every device in Hz.
    seed:
        Population seed: the whole transition matrix is drawn from it in
        one vectorised backend call, so a population is fully
        reproducible.  With ``legacy_seed=True``, device ``i`` instead
        uses a child seed derived from it (the historical per-device
        draw).
    legacy_seed:
        **Deprecated.**  ``True`` restores the pre-scale-out per-device
        seeding for the ``"flash"`` and ``"gaussian"`` architectures: a
        Python loop drawing one child seed per device (``"flash"``
        additionally builds physical :class:`~repro.adc.flash.FlashADC`
        ladder realisations, honouring ``comparator_fraction``).  The
        default ``False`` draws the population through the vectorised
        :class:`~repro.adc.backends.FlashLadderBackend` like every other
        architecture — same statistics, different realisations for the
        same seed.  The flag only exists so studies pinned to the old
        seeded matrices can reproduce them and will be removed.
    """

    n_bits: int = 6
    sigma_code_width_lsb: float = 0.21
    size: int = 364
    architecture: str = "flash"
    comparator_fraction: float = 0.0
    full_scale: float = 1.0
    sample_rate: float = 1e6
    seed: Optional[int] = 0
    unit_cap_sigma_rel: float = 0.06
    comparator_offset_sigma_lsb: float = 0.0
    gain_error_sigma: float = 0.03
    threshold_sigma_lsb: float = 0.5
    legacy_seed: bool = False

    def __post_init__(self) -> None:
        if self.n_bits < 2:
            raise ValueError("n_bits must be >= 2")
        if self.size < 1:
            raise ValueError("size must be >= 1")
        if self.sigma_code_width_lsb < 0:
            raise ValueError("sigma_code_width_lsb must be non-negative")
        if self.architecture not in ("flash", "gaussian", "sar", "pipeline"):
            raise ValueError(
                f"unknown architecture {self.architecture!r}; "
                f"expected 'flash', 'gaussian', 'sar' or 'pipeline'")
        if self.legacy_seed:
            # stacklevel 3: __post_init__ <- generated __init__ <- caller.
            warnings.warn(
                "PopulationSpec(legacy_seed=True) is deprecated: "
                "populations draw through the vectorised transfer "
                "backends by default (same statistics, different "
                "realisations for the same seed); the per-device-seed "
                "draws will be removed",
                DeprecationWarning, stacklevel=3)

    def backend(self):
        """The vectorised transfer backend realising this population.

        ``"flash"`` and ``"gaussian"`` both map to the
        :class:`~repro.adc.backends.FlashLadderBackend` — the correlated
        code-width statistics of the ladder, which is exactly the model
        the Gaussian architecture draws from.  With ``legacy_seed=True``
        the backend does not reproduce
        :meth:`DevicePopulation.transition_matrix` (the legacy per-device
        draws consume seeds differently), so asking for it raises.
        """
        if self.legacy_seed and self.architecture not in ("sar", "pipeline"):
            raise ValueError(
                f"the {self.architecture!r} population architecture with "
                f"legacy_seed=True draws per-device seeds and has no "
                f"matrix backend")
        from repro.adc.backends import make_backend
        architecture = (self.architecture
                        if self.architecture in ("sar", "pipeline")
                        else "flash")
        return make_backend(
            architecture, self.n_bits, self.full_scale,
            sigma_code_width_lsb=self.sigma_code_width_lsb,
            unit_cap_sigma_rel=self.unit_cap_sigma_rel,
            comparator_offset_sigma_lsb=self.comparator_offset_sigma_lsb,
            gain_error_sigma=self.gain_error_sigma,
            threshold_sigma_lsb=self.threshold_sigma_lsb)

    @property
    def matrix_backed(self) -> bool:
        """Whether the population draws one vectorised transition matrix."""
        return (self.architecture in ("sar", "pipeline")
                or not self.legacy_seed)

    @property
    def n_codes(self) -> int:
        """Number of output codes per device."""
        return 1 << self.n_bits

    @property
    def n_inner_codes(self) -> int:
        """Number of inner code widths per device."""
        return self.n_codes - 2


class DevicePopulation:
    """A reproducible Monte-Carlo batch of converters.

    The population is generated lazily: device objects are only materialised
    when iterated or indexed, while bulk statistics (code-width matrix,
    yield) are computed vectorised without building per-device Python
    objects when the Gaussian architecture is selected.
    """

    def __init__(self, spec: PopulationSpec) -> None:
        self.spec = spec
        self._rng = np.random.default_rng(spec.seed)
        self._device_seeds = self._rng.integers(0, 2 ** 31 - 1,
                                                size=spec.size)
        self._width_matrix_lsb: Optional[np.ndarray] = None
        self._transition_matrix: Optional[np.ndarray] = None
        self._devices: Optional[List[ADC]] = None

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #

    @classmethod
    def paper_batch(cls, sigma_code_width_lsb: float = 0.21,
                    size: int = 364, seed: int = 1997,
                    architecture: str = "flash") -> "DevicePopulation":
        """The batch used throughout the paper's section 4.

        6-bit flash devices, worst-case code-width sigma of 0.21 LSB, 364
        devices (the measured batch size).
        """
        return cls(PopulationSpec(n_bits=6,
                                  sigma_code_width_lsb=sigma_code_width_lsb,
                                  size=size, seed=seed,
                                  architecture=architecture))

    # ------------------------------------------------------------------ #
    # Device access
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return self.spec.size

    def __iter__(self) -> Iterator[ADC]:
        for i in range(len(self)):
            yield self[i]

    def __getitem__(self, index: int) -> ADC:
        if self._devices is None:
            self._devices = [None] * len(self)  # type: ignore[list-item]
        if not -len(self) <= index < len(self):
            raise IndexError(f"device index {index} out of range")
        index = index % len(self)
        if self._devices[index] is None:
            self._devices[index] = self._build_device(index)
        return self._devices[index]

    def _build_device(self, index: int) -> ADC:
        seed = int(self._device_seeds[index])
        spec = self.spec
        if spec.matrix_backed:
            # Matrix-backed population: the device wraps its row of the
            # backend-drawn transition matrix, so scalar runs on it see
            # exactly the curve the batch engines decide on.
            tf = TransferFunction(n_bits=spec.n_bits,
                                  transitions=self.transition_matrix()[index],
                                  full_scale=spec.full_scale)
            return TableADC(tf, sample_rate=spec.sample_rate,
                            name=f"{spec.architecture} device {index}")
        if spec.architecture == "flash":
            # Deprecated legacy_seed path: a physical ladder realisation
            # per device, seeded by this device's child seed.
            device = FlashADC.from_sigma(
                n_bits=spec.n_bits,
                sigma_code_width_lsb=spec.sigma_code_width_lsb,
                comparator_fraction=spec.comparator_fraction,
                full_scale=spec.full_scale,
                sample_rate=spec.sample_rate,
                rng=seed)
            return device
        # Deprecated legacy_seed path: per-device width draw.
        widths_lsb = correlated_code_widths(
            1, spec.n_inner_codes, spec.sigma_code_width_lsb, rng=seed)[0]
        lsb = spec.full_scale / spec.n_codes
        tf = TransferFunction.from_code_widths(
            spec.n_bits, widths_lsb * lsb, full_scale=spec.full_scale)
        return TableADC(tf, sample_rate=spec.sample_rate,
                        name=f"gaussian device {index}")

    # ------------------------------------------------------------------ #
    # Bulk statistics
    # ------------------------------------------------------------------ #

    def code_width_matrix_lsb(self) -> np.ndarray:
        """Return the (devices x inner codes) matrix of code widths in LSB."""
        if self._width_matrix_lsb is None:
            spec = self.spec
            if spec.matrix_backed:
                lsb = spec.full_scale / spec.n_codes
                self._width_matrix_lsb = (
                    np.diff(self.transition_matrix(), axis=1) / lsb)
            elif spec.architecture == "gaussian":
                # Deprecated legacy_seed path: re-derive deterministically
                # but independently of lazily built devices, using the
                # per-device seeds for exact agreement.
                rows = [correlated_code_widths(
                            1, spec.n_inner_codes,
                            spec.sigma_code_width_lsb,
                            rng=int(s))[0]
                        for s in self._device_seeds]
                self._width_matrix_lsb = np.vstack(rows)
            else:
                rows = [self[i].transfer_function().code_widths_lsb
                        for i in range(len(self))]
                self._width_matrix_lsb = np.vstack(rows)
        return self._width_matrix_lsb

    def transition_matrix(self) -> np.ndarray:
        """Return the (devices x transitions) matrix of transition voltages.

        The row for device ``i`` is bit-identical to
        ``self[i].transfer_function().transitions``, so matrix-level
        consumers (the batch BIST engine in :mod:`repro.production`) decide
        on exactly the transfer curves the per-device objects expose.  By
        default the whole matrix comes from one vectorised backend draw
        seeded by the population seed; the deprecated ``legacy_seed``
        populations re-derive it per device instead.
        """
        spec = self.spec
        if spec.matrix_backed:
            if self._transition_matrix is None:
                # One vectorised backend draw for the whole population,
                # seeded by the population seed.
                self._transition_matrix = spec.backend().draw_transitions(
                    spec.size, rng=spec.seed)
            return self._transition_matrix
        if spec.architecture == "gaussian":
            lsb = spec.full_scale / spec.n_codes
            widths_volts = self.code_width_matrix_lsb() * lsb
            return batch_transitions_from_code_widths(
                widths_volts, first_transition=lsb)
        return np.vstack([self[i].transfer_function().transitions
                          for i in range(len(self))])

    def empirical_sigma_lsb(self) -> float:
        """Population standard deviation of all code widths, in LSB."""
        return float(self.code_width_matrix_lsb().std(ddof=1))

    def empirical_correlation(self) -> float:
        """Average pairwise correlation between code widths within a device.

        Estimated as the mean off-diagonal entry of the empirical correlation
        matrix of the width columns; for the ladder model this converges to
        ``-1/(N-1)``.
        """
        matrix = self.code_width_matrix_lsb()
        corr = np.corrcoef(matrix, rowvar=False)
        n = corr.shape[0]
        off_diag_sum = corr.sum() - np.trace(corr)
        return float(off_diag_sum / (n * (n - 1)))

    def dnl_matrix(self) -> np.ndarray:
        """End-point DNL of every device (devices x inner codes), in LSB."""
        widths = self.code_width_matrix_lsb()
        ref = widths.mean(axis=1, keepdims=True)
        return widths / ref - 1.0

    def max_dnl_per_device(self) -> np.ndarray:
        """Largest |DNL| of each device, in LSB."""
        return np.abs(self.dnl_matrix()).max(axis=1)

    def max_inl_per_device(self) -> np.ndarray:
        """Largest |INL| of each device, in LSB (cumulative end-point DNL)."""
        inl = np.cumsum(self.dnl_matrix(), axis=1)
        return np.abs(inl).max(axis=1)

    def good_mask(self, dnl_spec_lsb: float,
                  inl_spec_lsb: Optional[float] = None) -> np.ndarray:
        """Boolean mask of devices meeting the DNL (and optional INL) spec."""
        good = self.max_dnl_per_device() <= dnl_spec_lsb
        if inl_spec_lsb is not None:
            good &= self.max_inl_per_device() <= inl_spec_lsb
        return good

    def yield_fraction(self, dnl_spec_lsb: float,
                       inl_spec_lsb: Optional[float] = None) -> float:
        """Fraction of devices meeting the spec (the paper's "30 % good")."""
        return float(self.good_mask(dnl_spec_lsb, inl_spec_lsb).mean())

    def devices(self, indices: Optional[Sequence[int]] = None) -> List[ADC]:
        """Materialise and return devices (all, or the given indices)."""
        if indices is None:
            indices = range(len(self))
        return [self[i] for i in indices]
