"""repro — reproduction of "Built-In Self-Test Methodology for A/D Converters".

This package reproduces the DATE 1997 paper by R. de Vries, T. Zwemstra,
E.M.J.G. Bruls and P.P.L. Regtien.  It contains:

``repro.adc``
    Behavioural A/D-converter models (ideal, flash, SAR, pipeline) with
    process-variation and fault-injection support, plus Monte-Carlo device
    population generation.

``repro.signals``
    Stimulus generation: ramps/sawtooths, sines, noise sources, sampling
    clocks with jitter, and models of imperfect on-chip ramp generators.

``repro.analysis``
    Measurement and statistics: the conventional code-density (histogram)
    test, static linearity extraction (offset, gain, DNL, INL), dynamic FFT
    tests (THD, SNR, SINAD, ENOB, SFDR), and the paper's statistical error
    model for the counting-based BIST (type I / type II error probabilities).

``repro.core``
    The paper's contribution: the partial-BIST partition (``qmin``), the LSB
    processing block, the MSB functionality checker, the deglitch filter,
    count-limit computation and the full :class:`~repro.core.engine.BistEngine`.

``repro.economics``
    Test-cost and parallel-test scheduling models quantifying the test-time
    reduction the paper motivates.

``repro.production``
    The production floor: wafer/lot parameter-matrix models, the vectorised
    batch engines, the deterministic scale-out layer, the screening line
    and the result-store ledger.

``repro.campaign``
    The declarative front door: :class:`~repro.campaign.scenario.Scenario`
    (one frozen value object per run), :func:`~repro.campaign.factory.make_engine`
    (the only engine-construction site) and
    :class:`~repro.campaign.driver.Campaign` (scenario grids fanned over
    the scale-out layer, shard-merged into one ledger).

``repro.reporting``
    Helpers used by the benchmark harness to print the paper's tables and
    figure series.

``repro.telemetry``
    Observability: counters, timers and span traces threaded through the
    executor, engines, screening line and campaign driver — a strict
    no-op unless a :class:`~repro.telemetry.core.Telemetry` session is
    installed — plus the ``repro`` logger hierarchy and schema-versioned
    metrics JSON export.

Quickstart
----------

>>> from repro import FlashADC, BistEngine, BistConfig
>>> adc = FlashADC.from_sigma(n_bits=6, sigma_code_width_lsb=0.21, seed=1)
>>> engine = BistEngine(BistConfig(n_bits=6, counter_bits=7,
...                                dnl_spec_lsb=1.0, inl_spec_lsb=1.0))
>>> result = engine.run(adc)
>>> result.passed  # doctest: +SKIP
True
"""

from repro.adc import (
    ADC,
    FlashADC,
    IdealADC,
    PipelineADC,
    SarADC,
    TransferFunction,
    DevicePopulation,
    PopulationSpec,
)
from repro.analysis import (
    HistogramTest,
    HistogramTestResult,
    CodeWidthDistribution,
    ErrorModel,
    BinomialDeviceModel,
    DynamicAnalyzer,
    LinearityResult,
    linearity_from_code_widths,
)
from repro.core import (
    BistConfig,
    BistEngine,
    BistResult,
    CountLimits,
    LsbProcessor,
    MsbChecker,
    DeglitchFilter,
    SaturatingCounter,
    qmin,
    nl_budget,
)
from repro.signals import (
    RampStimulus,
    SineStimulus,
    SamplingClock,
    NoiseModel,
)
from repro.campaign import (
    Campaign,
    CampaignResult,
    Scenario,
    make_engine,
)
from repro.telemetry import (
    NULL_TELEMETRY,
    MetricsReport,
    Telemetry,
    current_telemetry,
    metrics_document,
    telemetry_session,
)

__all__ = [
    "NULL_TELEMETRY",
    "MetricsReport",
    "Telemetry",
    "current_telemetry",
    "metrics_document",
    "telemetry_session",
    "Campaign",
    "CampaignResult",
    "Scenario",
    "make_engine",
    "ADC",
    "FlashADC",
    "IdealADC",
    "PipelineADC",
    "SarADC",
    "TransferFunction",
    "DevicePopulation",
    "PopulationSpec",
    "HistogramTest",
    "HistogramTestResult",
    "CodeWidthDistribution",
    "ErrorModel",
    "BinomialDeviceModel",
    "DynamicAnalyzer",
    "LinearityResult",
    "linearity_from_code_widths",
    "BistConfig",
    "BistEngine",
    "BistResult",
    "CountLimits",
    "LsbProcessor",
    "MsbChecker",
    "DeglitchFilter",
    "SaturatingCounter",
    "qmin",
    "nl_budget",
    "RampStimulus",
    "SineStimulus",
    "SamplingClock",
    "NoiseModel",
]

__version__ = "1.0.0"
