"""Table / series / ASCII-plot formatting used by the benchmark harness."""

from repro.reporting.tables import ascii_plot, format_series, format_table

__all__ = ["ascii_plot", "format_series", "format_table"]
