"""Plain-text table and series formatting for the benchmark harness.

The benchmarks regenerate the paper's tables and figures as text: tables as
aligned columns, figures as (x, y) series listings with an optional ASCII
plot.  Keeping the formatting in one place makes every benchmark print the
same way and keeps the benchmark bodies focused on the experiment itself.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

import numpy as np

__all__ = ["format_table", "format_series", "ascii_plot"]


def _format_cell(value, float_format: str) -> str:
    """Render one cell: floats via the format, everything else via str()."""
    if isinstance(value, (float, np.floating)):
        return format(float(value), float_format)
    return str(value)


def format_table(headers: Sequence[str], rows: Iterable[Sequence],
                 title: Optional[str] = None,
                 float_format: str = ".4g") -> str:
    """Format rows as an aligned plain-text table.

    Parameters
    ----------
    headers:
        Column headers.
    rows:
        Iterable of rows; each row must have ``len(headers)`` entries.
    title:
        Optional title printed above the table.
    float_format:
        Format specification applied to float cells.
    """
    headers = [str(h) for h in headers]
    rendered: List[List[str]] = []
    for row in rows:
        row = list(row)
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but there are {len(headers)} "
                f"headers")
        rendered.append([_format_cell(cell, float_format) for cell in row])

    widths = [len(h) for h in headers]
    for row in rendered:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(x: Sequence[float], y: Sequence[float],
                  x_label: str = "x", y_label: str = "y",
                  title: Optional[str] = None,
                  float_format: str = ".4g") -> str:
    """Format a figure series as a two-column listing."""
    x = list(x)
    y = list(y)
    if len(x) != len(y):
        raise ValueError("x and y must have the same length")
    return format_table([x_label, y_label], zip(x, y), title=title,
                        float_format=float_format)


def ascii_plot(x: Sequence[float], y: Sequence[float],
               width: int = 60, height: int = 15,
               title: Optional[str] = None,
               logy: bool = False) -> str:
    """Render a rough ASCII scatter/line plot of a series.

    Intended for eyeballing the shape of a reproduced figure in the
    benchmark output, not for publication.
    """
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if x.size != y.size or x.size == 0:
        raise ValueError("x and y must be non-empty and equally long")
    if width < 10 or height < 5:
        raise ValueError("plot must be at least 10x5 characters")

    plot_y = y.copy()
    if logy:
        positive = plot_y > 0
        if not positive.any():
            raise ValueError("logy requires at least one positive value")
        floor = plot_y[positive].min() / 10.0
        plot_y = np.log10(np.clip(plot_y, floor, None))

    x_min, x_max = float(x.min()), float(x.max())
    y_min, y_max = float(plot_y.min()), float(plot_y.max())
    x_span = (x_max - x_min) or 1.0
    y_span = (y_max - y_min) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for xi, yi in zip(x, plot_y):
        col = int(round((xi - x_min) / x_span * (width - 1)))
        row = int(round((yi - y_min) / y_span * (height - 1)))
        grid[height - 1 - row][col] = "*"

    lines = []
    if title:
        lines.append(title)
    top_label = f"{y_max:.3g}" + (" (log10)" if logy else "")
    lines.append(top_label)
    lines.extend("|" + "".join(row) for row in grid)
    lines.append("+" + "-" * width)
    lines.append(f"{x_min:.3g}".ljust(width // 2)
                 + f"{x_max:.3g}".rjust(width - width // 2))
    return "\n".join(lines)
