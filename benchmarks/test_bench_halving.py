"""E7 — "The type I error probability is approximately halved per counter bit."

Both the measurements and the simulations in the paper show that adding one
bit to the counter roughly halves the probability of rejecting a good device
(and halves the measurement error).  The benchmark quantifies that scaling
over counters from 4 to 9 bits at the stringent specification.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import ErrorModel
from repro.reporting import format_table

N_CODES = 62
DNL_SPEC = 0.5
COUNTER_RANGE = range(4, 10)


def _scaling():
    results = {}
    for bits in COUNTER_RANGE:
        model = ErrorModel(dnl_spec_lsb=DNL_SPEC, counter_bits=bits)
        results[bits] = (model.device(N_CODES), model.max_error_lsb())
    return results


def test_bench_type_i_halving(benchmark, report):
    results = benchmark(_scaling)

    rows = []
    previous = None
    ratios = []
    for bits in COUNTER_RANGE:
        device, max_error = results[bits]
        ratio = (previous / device.type_i) if previous else float("nan")
        if previous:
            ratios.append(ratio)
        rows.append([bits, device.type_i, ratio, max_error])
        previous = device.type_i
    report("Type-I halving law (stringent spec ±0.5 LSB)",
           format_table(
               ["counter bits", "P(type I)", "ratio vs previous",
                "max error [LSB]"], rows))

    geometric_mean = float(np.prod(ratios) ** (1.0 / len(ratios)))
    # "Approximately halved": the average ratio sits near two.
    assert 1.5 < geometric_mean < 3.0
    # The measurement error halves exactly (it is one counting step).
    errors = [results[bits][1] for bits in COUNTER_RANGE]
    error_ratios = [a / b for a, b in zip(errors, errors[1:])]
    assert all(1.9 < r < 2.1 for r in error_ratios)
