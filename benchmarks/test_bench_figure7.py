"""E1 — Figure 7: type I / type II error probability versus step size.

The paper's Figure 7 plots the simulated probabilities of type I and type II
errors as a function of the step size ``ds`` for the stringent ±0.5 LSB DNL
specification, over the step-size region a 4-bit counter can serve.  The
benchmark regenerates both series with the closed-form error model and
cross-checks two points against the Monte-Carlo counting simulation.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import ErrorModel, estimate_error_probabilities
from repro.reporting import ascii_plot, format_table

N_CODES = 62          # inner codes of the paper's 6-bit flash converters
SIGMA_LSB = 0.21      # worst-case code-width sigma from circuit simulation
DNL_SPEC = 0.5        # stringent specification of Figure 7 / Table 1
# Step sizes for which the 4-bit counter (i_max = 16) is the right size.
DS_VALUES = np.linspace(0.070, 0.115, 46)


def _sweep():
    return ErrorModel.sweep_delta_s(DS_VALUES, n_codes=N_CODES,
                                    dnl_spec_lsb=DNL_SPEC)


def test_bench_figure7_sweep(benchmark, report):
    sweep = benchmark(_sweep)

    rows = [[ds, ti, tii] for ds, ti, tii in
            zip(sweep["delta_s_lsb"][::5], sweep["type_i"][::5],
                sweep["type_ii"][::5])]
    body = [format_table(["ds [LSB]", "P(type I)", "P(type II)"], rows,
                         title="Sampled points of the reproduced series")]
    body.append("")
    body.append(ascii_plot(sweep["delta_s_lsb"], sweep["type_i"],
                           title="P(type I) vs ds (DNL spec ±0.5 LSB)"))
    body.append("")
    body.append(ascii_plot(sweep["delta_s_lsb"], sweep["type_ii"],
                           title="P(type II) vs ds (DNL spec ±0.5 LSB)"))
    report("Figure 7 — error probabilities vs step size", "\n".join(body))

    # Shape checks: probabilities stay in a few-percent band over the 4-bit
    # region (the series is jagged because the count limits move in integer
    # steps as ds changes — the same sawtooth visible in the paper's figure).
    assert np.all(sweep["type_i"] >= 0)
    assert np.all(sweep["type_ii"] >= 0)
    assert np.any(sweep["type_i"] > 0.01)
    assert np.any(sweep["type_ii"] > 0.01)
    assert np.all(sweep["type_i"] < 0.3)
    assert np.all(sweep["type_ii"] < 0.3)


def test_bench_figure7_monte_carlo_crosscheck(benchmark, report):
    """Two points of the figure validated with the counting simulation."""

    def crosscheck():
        results = []
        for ds in (0.080, 0.091):
            analytic = ErrorModel(dnl_spec_lsb=DNL_SPEC,
                                  delta_s_lsb=ds).device(N_CODES)
            mc = estimate_error_probabilities(
                n_devices=40000, n_codes=N_CODES, sigma_lsb=SIGMA_LSB,
                dnl_spec_lsb=DNL_SPEC, delta_s_lsb=ds, rng=17)
            results.append((ds, analytic, mc))
        return results

    results = benchmark.pedantic(crosscheck, rounds=1, iterations=1)
    rows = [[ds, a.type_i, mc.type_i, a.type_ii, mc.type_ii]
            for ds, a, mc in results]
    report("Figure 7 — analytic vs Monte-Carlo cross-check",
           format_table(["ds [LSB]", "type I analytic", "type I MC",
                         "type II analytic", "type II MC"], rows))
    for _, analytic, mc in results:
        assert mc.type_i == pytest.approx(analytic.type_i, abs=0.015)
        assert mc.type_ii == pytest.approx(analytic.type_ii, abs=0.015)
