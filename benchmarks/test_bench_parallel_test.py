"""E9 — The introduction's parallelism and test-cost claims.

The paper's motivation is economic: moving the test-data processing on-chip
reduces the bits the tester must capture per converter, which lets more
converters share one tester insertion and lets a cheap digital tester replace
a mixed-signal one.  These benchmarks quantify that chain of claims with the
behavioural multi-converter controller and the economics models, and also
time the controller itself (the library's own overhead for chip-level runs).
"""

from __future__ import annotations

import pytest

from repro.adc import FlashADC
from repro.core import BistConfig, MultiAdcBistController, qmin
from repro.economics import (
    TestCostOptimizer,
    TestPlan,
    TesterModel,
    compare_schedules,
    cost_per_device,
)
from repro.reporting import format_table


def test_bench_chip_parallelism(benchmark, report):
    """One shared ramp tests any number of on-chip converters."""
    controller = MultiAdcBistController(BistConfig(counter_bits=6,
                                                   dnl_spec_lsb=1.0))

    def run_chip_sizes():
        results = {}
        for n in (1, 2, 4, 8):
            converters = [FlashADC.from_sigma(6, 0.21, seed=200 + i)
                          for i in range(n)]
            results[n] = controller.run_chip(converters, rng=3)
        return results

    results = benchmark.pedantic(run_chip_sizes, rounds=1, iterations=1)
    rows = [[n, r.test_time_s * 1e3, r.sequential_test_time_s * 1e3,
             r.parallel_speedup, controller.gate_count(n)]
            for n, r in results.items()]
    report("Parallel chip-level BIST (shared ramp)",
           format_table(
               ["converters on chip", "chip test time [ms]",
                "sequential time [ms]", "speed-up", "test logic [gates]"],
               rows))
    # The chip test time is independent of the converter count and the
    # speed-up therefore scales linearly with it.
    times = [r.test_time_s for r in results.values()]
    assert max(times) == pytest.approx(min(times), rel=0.01)
    assert results[8].parallel_speedup == pytest.approx(8.0, rel=0.05)


def test_bench_tester_cost_comparison(benchmark, report):
    """Conventional vs partial-BIST vs full-BIST tester economics."""

    def economics():
        mixed_signal = TesterModel.mixed_signal()
        digital = TesterModel.digital_only()
        q = qmin(10.0, 1e6, 6)
        plans = {
            "conventional histogram (MS tester)": (
                TestPlan.conventional_histogram(6, 4096), mixed_signal),
            f"partial BIST q={q} (MS tester)": (
                TestPlan.partial_bist(6, q, 4096), mixed_signal),
            "full BIST (digital tester)": (
                TestPlan.full_bist(6, 4096), digital),
        }
        rows = []
        for name, (plan, tester) in plans.items():
            rows.append([name, plan.data_volume_bits, plan.channels_needed(),
                         cost_per_device(plan, tester) * 1e3])
        schedules = compare_schedules(10_000, 6, q, 64,
                                      time_per_pass_s=4096e-6)
        return rows, schedules

    rows, schedules = benchmark(economics)
    body = [format_table(
        ["flow", "bits captured/device", "channels/device",
         "tester cost/device [m$]"], rows)]
    body.append("")
    body.append(format_table(
        ["flow", "total time for 10k converters [s]"],
        [["conventional", schedules[0].total_time_s],
         ["partial BIST", schedules[1].total_time_s],
         ["full BIST", schedules[2].total_time_s]]))
    report("Tester economics (introduction's motivation)", "\n".join(body))

    costs = [row[3] for row in rows]
    # Each step towards full BIST reduces the per-device tester cost.
    assert costs[1] <= costs[0]
    assert costs[2] <= costs[1]
    assert schedules[2].total_time_s < schedules[0].total_time_s


def test_bench_cost_optimum(benchmark, report):
    """Total cost of test versus counter size (Figure 1, priced)."""
    optimizer = TestCostOptimizer(dnl_spec_lsb=1.0)

    def sweep():
        return optimizer.sweep(range(4, 10)), optimizer.best(range(4, 10))

    breakdowns, best = benchmark(sweep)
    rows = [[bits, b.silicon_cost * 1e3, b.yield_loss_cost * 1e3,
             b.escape_cost * 1e3, b.total * 1e3, b.quality.shipped_dppm]
            for bits, b in breakdowns.items()]
    report("Cost-of-test optimum versus counter size",
           format_table(
               ["counter bits", "silicon [m$]", "yield loss [m$]",
                "escapes [m$]", "total [m$]", "shipped DPPM"], rows)
           + f"\n\nbest configuration: {best.counter_bits}-bit counter")
    # Every configuration from 4 bits up meets the paper's ppm target, and
    # the optimum is an interior point (escapes push up small counters,
    # silicon pushes up very large ones).
    assert all(b.quality.meets_quality_target(100.0)
               for b in breakdowns.values())
    assert 4 <= best.counter_bits <= 9
