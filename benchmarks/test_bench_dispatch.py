"""Dispatch-overhead benchmark: cold pool vs warm pool vs serial.

The persistent :class:`~repro.production.pool.WorkerPool` exists to kill
two per-dispatch costs: forking a fresh worker set on every ``map`` call
(cold-pool churn) and pickling matrix rows over the pipe (replaced by
shared-memory :class:`~repro.production.pool.SliceRef` descriptors).
This bench isolates those costs: the *noise-free event path* screens
devices so fast that dispatch overhead dominates, so devices/second vs
shard size is a direct read of the scheduling layer's fixed costs.

Three modes per shard size, identical results asserted:

``serial``
    ``workers=1`` — the in-process reference, no dispatch at all.
``cold``
    ``workers=4, reuse_pool=False`` — the pre-pool behaviour: a
    transient pool forked and torn down inside every dispatch.
``warm``
    ``workers=4`` inside a warmed :func:`shared_pool` block — workers
    forked once, shards shipped by descriptor.

``dispatch.warm_pool_speedup_small_shards`` (warm/cold at the smallest
shard) is the headline: small shards mean many dispatches, which is
where the persistent pool pays.  Like the scaling bench, the wall-clock
rows stay report-only — this file is collected by the gating tier-1
run, and thresholds on shared CI runners would be hostage to co-tenant
load; the recorded BENCH_*.json trajectory is the enforcement point.
"""

import time

import numpy as np

from repro.core import BistConfig
from repro.production import (
    BatchBistEngine,
    ExecutionPlan,
    Wafer,
    WaferSpec,
    close_default_pool,
    shared_pool,
)
from repro.reporting import format_table

#: Shard sizes swept; 4096 devices / 4096 shard = one shard, which both
#: pool modes run inline — the zero-dispatch sanity row.
SHARD_SIZES = (128, 512, 1024, 4096)

N_DEVICES = 4096
WORKERS = 4
REPEATS = 3

_CONFIG = BistConfig(n_bits=6, counter_bits=7, dnl_spec_lsb=1.0)


def _throughput(engine, wafer, plan, repeats=REPEATS):
    """Best-of devices/second over ``repeats`` timed runs (post warm-up),
    plus the last result for the bit-identity assertion."""
    result = engine.run_wafer(wafer, rng=0, plan=plan)  # warm-up
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        result = engine.run_wafer(wafer, rng=0, plan=plan)
        best = min(best, time.perf_counter() - start)
    return N_DEVICES / best, result


class TestDispatchOverhead:
    def test_cold_vs_warm_vs_serial_across_shard_sizes(self, report,
                                                       bench):
        engine = BatchBistEngine(_CONFIG)
        wafer = Wafer.draw(WaferSpec(n_bits=6, sigma_code_width_lsb=0.21,
                                     n_devices=N_DEVICES), rng=1997)
        rows = []
        speedup_small = None
        for shard in SHARD_SIZES:
            serial_tp, reference = _throughput(engine, wafer, ExecutionPlan(
                workers=1, shard_devices=shard))
            cold_tp, cold_res = _throughput(engine, wafer, ExecutionPlan(
                workers=WORKERS, shard_devices=shard, reuse_pool=False))
            with shared_pool(workers=WORKERS) as pool:
                pool.warm_up()
                warm_tp, warm_res = _throughput(engine, wafer,
                                                ExecutionPlan(
                    workers=WORKERS, shard_devices=shard))
            close_default_pool()

            # The overhead comparison only counts if the answers are
            # identical in all three modes.
            for candidate in (cold_res, warm_res):
                np.testing.assert_array_equal(reference.passed,
                                              candidate.passed)

            bench(f"dispatch.devices_per_s_serial_shard_{shard}",
                  serial_tp)
            bench(f"dispatch.devices_per_s_cold_shard_{shard}", cold_tp)
            bench(f"dispatch.devices_per_s_warm_shard_{shard}", warm_tp)
            if shard == SHARD_SIZES[0]:
                speedup_small = warm_tp / cold_tp
            rows.append([shard, N_DEVICES // shard, serial_tp, cold_tp,
                         warm_tp, warm_tp / cold_tp])

        bench("dispatch.warm_pool_speedup_small_shards", speedup_small)
        report("dispatch overhead (cold pool vs warm pool vs serial)",
               format_table(
                   ["shard", "dispatches", "serial devices/s",
                    "cold devices/s", "warm devices/s", "warm/cold"],
                   rows,
                   title=f"noise-free event path, {N_DEVICES} devices, "
                         f"{WORKERS} workers; warm pool speedup at "
                         f"shard {SHARD_SIZES[0]}: "
                         f"{speedup_small:.2f}x"))
