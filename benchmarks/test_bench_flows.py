"""Adaptive-flow benchmark: SPRT savings vs fixed-count screening.

The tentpole's economic claim, measured: on the paper's baseline process
(0.21 LSB code-width sigma under the default 1.0 LSB DNL spec) the
sequential (SPRT) station stops most devices after a handful of codes,
so the adaptive flow buys back almost the whole fixed insertion time
while staying inside the binomial model's predicted error bounds.

``flows.saved_samples_fraction``
    Fraction of the fixed flow's code observations the SPRT never had
    to take (the paper-level sample-savings headline).
``flows.saved_tester_seconds_fraction``
    Saved tester-seconds over the fixed insertion's tester-seconds —
    the same savings priced through the TesterModel.
``flows.escape_bound_margin``
    Analytic ``sequential_escape_bound`` minus the measured type II —
    non-negative is the acceptance criterion, recorded so the
    trajectory notices the margin eroding.
``flows.burst_abort_fraction``
    Fraction of a burst-excursed lot left untested once the SPC charts
    abort its wafers — tester time the early abort recovers.

Wall-clock devices/s rows stay report-only (shared CI runners); the
model-level savings fractions are deterministic and asserted.
"""

import time

from repro.analysis.binomial import sequential_escape_bound
from repro.campaign import Scenario, sequential_policy
from repro.production import ExecutionPlan, ScreeningLine
from repro.production.pool import close_default_pool
from repro.reporting import format_table

#: The paper's baseline process point under the repo-default spec.
BASELINE = dict(n_bits=8, sigma_code_width_lsb=0.21,
                n_devices=2048, n_wafers=2, seed=11)

#: Burst-excursion point (matches the flows-smoke CI drill).
BURST = dict(n_bits=8, sigma_code_width_lsb=0.21, n_devices=512,
             n_wafers=2, seed=9, flow="sprt", excursion="burst")

_PLAN = ExecutionPlan(workers=1, shard_devices=64)
REPEATS = 3


def _screen(scenario, lot):
    line = ScreeningLine.from_scenario(scenario)
    start = time.perf_counter()
    report = line.screen_lot(lot, plan=_PLAN)
    return time.perf_counter() - start, report


def _best(scenario, lot, repeats=REPEATS):
    elapsed, report = _screen(scenario, lot)  # warm-up
    for _ in range(repeats):
        t, report = _screen(scenario, lot)
        elapsed = min(elapsed, t)
    return elapsed, report


class TestAdaptiveFlowEconomics:
    def test_sprt_savings_and_bounds(self, report, bench):
        fixed = Scenario(flow="fixed", **BASELINE)
        sprt = fixed.derive(flow="sprt")
        lot = fixed.draw_lot()
        try:
            fixed_s, report_fixed = _best(fixed, lot)
            sprt_s, report_sprt = _best(sprt, lot)
            burst = Scenario(**BURST)
            _, report_burst = _screen(burst, burst.draw_lot())
        finally:
            close_default_pool()

        n = report_fixed.n_devices
        policy, per_code = sequential_policy(sprt)
        n_codes = sprt.wafer_spec().n_inner_codes
        escape_bound = sequential_escape_bound(per_code, n_codes,
                                               policy.min_accept_codes)
        saved_fraction = report_sprt.saved_samples / (n * n_codes)
        seconds_fraction = (report_sprt.saved_tester_seconds
                            / report_fixed.tester_seconds)
        abort_fraction = report_burst.n_aborted / report_burst.n_devices

        # The acceptance criteria, enforced on every trajectory point:
        # real savings, and the measured escape under the model's bound.
        assert report_sprt.saved_samples > 0
        assert report_sprt.saved_tester_seconds > 0.0
        assert report_sprt.type_ii <= escape_bound
        assert report_burst.excursions > 0
        assert 0.0 < abort_fraction < 1.0

        bench("flows.saved_samples_fraction", saved_fraction)
        bench("flows.saved_tester_seconds_fraction", seconds_fraction)
        bench("flows.escape_bound_margin",
              escape_bound - report_sprt.type_ii)
        bench("flows.burst_abort_fraction", abort_fraction)
        bench("flows.fixed_devices_per_s", n / fixed_s)
        bench("flows.sprt_devices_per_s", n / sprt_s)
        report(
            "adaptive flows: SPRT vs fixed-count screening",
            format_table(
                ["flow", "tester [s]", "saved [s]", "type I", "type II",
                 "wall [s]", "devices/s"],
                [["fixed", report_fixed.tester_seconds, 0.0,
                  report_fixed.type_i, report_fixed.type_ii,
                  fixed_s, n / fixed_s],
                 ["sprt", report_sprt.tester_seconds,
                  report_sprt.saved_tester_seconds,
                  report_sprt.type_i, report_sprt.type_ii,
                  sprt_s, n / sprt_s]],
                title=f"{n} devices x {n_codes} codes; "
                      f"saved {saved_fraction:.1%} of samples, "
                      f"{seconds_fraction:.1%} of tester time; "
                      f"escape bound {escape_bound:.2e}; "
                      f"burst abort leaves {abort_fraction:.1%} untested"))
