"""E2 — Table 1: stringent-spec (±0.5 LSB) error probabilities per counter size.

The paper's Table 1 lists, for counter sizes of 4–7 bits, the type I and
type II error probabilities obtained from simulation (SIM.) and from
measurements on a batch of 364 flash converters (MEAS.), plus the maximum
measurement error made.  Here the SIM. column comes from the closed-form
error model and the MEAS. column from actually running the sampled BIST
engine over a Monte-Carlo batch of flash devices standing in for the
measured silicon.
"""

from __future__ import annotations

import pytest

from repro.adc import DevicePopulation
from repro.analysis import ErrorModel
from repro.core import BistConfig, BistEngine
from repro.reporting import format_table

N_CODES = 62
DNL_SPEC = 0.5
COUNTER_SIZES = (4, 5, 6, 7)
BATCH_SIZE = 364          # the paper's measured batch size
PAPER_SIM_TYPE_I = {4: 0.065, 5: 0.025, 6: 0.015, 7: 0.015}
PAPER_SIM_TYPE_II = {4: 0.045, 5: 0.045, 6: 0.015, 7: 0.005}
PAPER_MAX_ERROR = {4: 0.09, 5: 0.05, 6: 0.02, 7: 0.01}


def _analytic_rows():
    rows = {}
    for bits in COUNTER_SIZES:
        model = ErrorModel(dnl_spec_lsb=DNL_SPEC, counter_bits=bits)
        rows[bits] = (model.device(N_CODES), model.max_error_lsb())
    return rows


def _measured_rows():
    population = DevicePopulation.paper_batch(size=BATCH_SIZE, seed=1997)
    rows = {}
    for bits in COUNTER_SIZES:
        engine = BistEngine(BistConfig(counter_bits=bits,
                                       dnl_spec_lsb=DNL_SPEC))
        rows[bits] = engine.run_population(population, rng=bits)
    return rows


def test_bench_table1_simulation_column(benchmark, report):
    analytic = benchmark(_analytic_rows)

    rows = []
    for bits in COUNTER_SIZES:
        device, max_error = analytic[bits]
        rows.append([bits, device.type_i, PAPER_SIM_TYPE_I[bits],
                     device.type_ii, PAPER_SIM_TYPE_II[bits],
                     max_error, PAPER_MAX_ERROR[bits]])
    report("Table 1 — SIM. columns (stringent spec ±0.5 LSB)",
           format_table(
               ["counter bits", "type I (repro)", "type I (paper)",
                "type II (repro)", "type II (paper)",
                "max err (repro)", "max err (paper)"], rows))

    # Shape assertions against the paper's SIM column.
    type_i = {bits: analytic[bits][0].type_i for bits in COUNTER_SIZES}
    type_ii = {bits: analytic[bits][0].type_ii for bits in COUNTER_SIZES}
    # Same order of magnitude at the 4-bit point.
    assert type_i[4] == pytest.approx(PAPER_SIM_TYPE_I[4], abs=0.03)
    assert type_ii[4] == pytest.approx(PAPER_SIM_TYPE_II[4], abs=0.03)
    # Monotone improvement with counter size, ending well below the start.
    assert type_i[7] < type_i[4] / 2
    assert type_ii[7] < type_ii[4]
    # The max-error column reproduces the paper's values closely.
    for bits in COUNTER_SIZES:
        assert analytic[bits][1] == pytest.approx(PAPER_MAX_ERROR[bits],
                                                  abs=0.035)


def test_bench_table1_measurement_column(benchmark, report):
    measured = benchmark.pedantic(_measured_rows, rounds=1, iterations=1)
    analytic = _analytic_rows()

    rows = []
    for bits in COUNTER_SIZES:
        result = measured[bits]
        device, _ = analytic[bits]
        rows.append([bits, result.type_i, device.type_i,
                     result.type_ii, device.type_ii, result.p_good])
    report("Table 1 — MEAS. columns (364-device Monte-Carlo batch)",
           format_table(
               ["counter bits", "type I (meas)", "type I (sim)",
                "type II (meas)", "type II (sim)", "P(good) batch"], rows))

    # The measured batch shows the same behaviour the paper reports: error
    # rates of a few percent at 4 bits that do not grow with counter size,
    # and a good-device fraction near 30 %.
    assert 0.2 < measured[4].p_good < 0.5
    assert measured[4].type_i < 0.2
    assert measured[7].type_i <= measured[4].type_i + 0.02
    assert measured[7].type_ii <= measured[4].type_ii + 0.02
