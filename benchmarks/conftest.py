"""Shared infrastructure for the benchmark harness.

Every benchmark regenerates one of the paper's tables, figures or headline
claims and registers the reproduced rows/series with :func:`record_report`.
The collected reports are printed in the terminal summary (so they appear in
``pytest benchmarks/ --benchmark-only`` output without needing ``-s``) —
that printout is the artefact EXPERIMENTS.md refers to.

Benchmarks additionally record machine-readable scalars with
:func:`record_metric` (devices/sec per engine, speedup vs scalar, scaling
efficiency).  When the ``REPRO_BENCH_JSON`` environment variable names a
path, the collected metrics are written there as a schema-versioned JSON
document at session end — the ``BENCH_*.json`` perf trajectory committed
per PR and uploaded as a CI artifact.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Tuple, Union

import pytest

#: Schema tag of the benchmark-results document.
BENCH_SCHEMA = "repro.bench/1"

_REPORTS: List[Tuple[str, str]] = []
_METRICS: Dict[str, Union[int, float]] = {}


def record_report(title: str, body: str) -> None:
    """Register a reproduced table/figure for the end-of-run summary."""
    _REPORTS.append((title, body))


def record_metric(name: str, value: Union[int, float]) -> None:
    """Register one machine-readable benchmark scalar (last write wins)."""
    _METRICS[name] = float(value)


@pytest.fixture
def report():
    """Fixture handing benchmarks the report-recording callable."""
    return record_report


@pytest.fixture
def bench():
    """Fixture handing benchmarks the metric-recording callable."""
    return record_metric


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    """Print every reproduced table/figure after the benchmark results."""
    if not _REPORTS:
        return
    terminalreporter.section("reproduced paper tables and figures")
    for title, body in _REPORTS:
        terminalreporter.write_line("")
        terminalreporter.write_line(f"==== {title} ====")
        for line in body.splitlines():
            terminalreporter.write_line(line)
    _REPORTS.clear()


def pytest_sessionfinish(session, exitstatus):
    """Write the collected metrics to ``$REPRO_BENCH_JSON`` when set."""
    path = os.environ.get("REPRO_BENCH_JSON")
    if not path or not _METRICS:
        return
    document = {
        "schema": BENCH_SCHEMA,
        "metrics": {name: _METRICS[name] for name in sorted(_METRICS)},
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
