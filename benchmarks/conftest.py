"""Shared infrastructure for the benchmark harness.

Every benchmark regenerates one of the paper's tables, figures or headline
claims and registers the reproduced rows/series with :func:`record_report`.
The collected reports are printed in the terminal summary (so they appear in
``pytest benchmarks/ --benchmark-only`` output without needing ``-s``) —
that printout is the artefact EXPERIMENTS.md refers to.
"""

from __future__ import annotations

from typing import List, Tuple

import pytest

_REPORTS: List[Tuple[str, str]] = []


def record_report(title: str, body: str) -> None:
    """Register a reproduced table/figure for the end-of-run summary."""
    _REPORTS.append((title, body))


@pytest.fixture
def report():
    """Fixture handing benchmarks the report-recording callable."""
    return record_report


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    """Print every reproduced table/figure after the benchmark results."""
    if not _REPORTS:
        return
    terminalreporter.section("reproduced paper tables and figures")
    for title, body in _REPORTS:
        terminalreporter.write_line("")
        terminalreporter.write_line(f"==== {title} ====")
        for line in body.splitlines():
            terminalreporter.write_line(line)
    _REPORTS.clear()
