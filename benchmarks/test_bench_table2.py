"""E3 — Table 2: error probabilities at the actual specification (±1 LSB).

Table 2 of the paper gives the simulated type I and type II error
probabilities (×10⁻⁵) and the maximum measurement error for counter sizes of
4–7 bits at the converter's actual DNL specification of ±1 LSB, concluding
that even a 4-bit counter keeps test escapes within the 10–100 ppm customer
requirement.
"""

from __future__ import annotations

import pytest

from repro.analysis import CodeWidthDistribution, ErrorModel
from repro.reporting import format_table

N_CODES = 62
DNL_SPEC = 1.0
COUNTER_SIZES = (4, 5, 6, 7)
PAPER_TYPE_I_1E5 = {4: 40, 5: 20, 6: 10, 7: 5}
PAPER_TYPE_II_1E5 = {4: 70, 5: 40, 6: 25, 7: 15}
PAPER_MAX_ERROR = {4: 1 / 8, 5: 1 / 16, 6: 1 / 32, 7: 1 / 64}


def _table2():
    rows = {}
    for bits in COUNTER_SIZES:
        model = ErrorModel(dnl_spec_lsb=DNL_SPEC, counter_bits=bits)
        rows[bits] = (model.device(N_CODES), model.max_error_lsb())
    return rows


def test_bench_table2(benchmark, report):
    results = benchmark(_table2)

    rows = []
    for bits in COUNTER_SIZES:
        device, max_error = results[bits]
        rows.append([bits,
                     device.type_i * 1e5, PAPER_TYPE_I_1E5[bits],
                     device.type_ii * 1e5, PAPER_TYPE_II_1E5[bits],
                     device.type_ii_ppm,
                     max_error, PAPER_MAX_ERROR[bits]])
    report("Table 2 — actual specification ±1 LSB",
           format_table(
               ["counter bits", "type I x1e-5 (repro)", "paper",
                "type II x1e-5 (repro)", "paper", "escapes [ppm]",
                "max err (repro)", "max err (paper)"], rows))

    type_i = {b: results[b][0].type_i for b in COUNTER_SIZES}
    type_ii = {b: results[b][0].type_ii for b in COUNTER_SIZES}

    # Both error probabilities are tiny (1e-5 .. 1e-3 range) and decrease
    # with the counter size — the paper's qualitative result.
    for bits in COUNTER_SIZES:
        assert type_i[bits] < 1e-3
        assert type_ii[bits] < 1e-3
    assert type_i[7] < type_i[4]
    assert type_ii[7] < type_ii[4]

    # The paper's headline conclusion: even the 4-bit counter keeps test
    # escapes within the 10-100 ppm quality requirement.
    assert results[4][0].type_ii_ppm < 100.0

    # The max-error column is the paper's 1/8 ... 1/64 LSB sequence.
    for bits in COUNTER_SIZES:
        assert results[bits][1] == pytest.approx(PAPER_MAX_ERROR[bits],
                                                 rel=0.05)


def test_bench_table2_yield_context(benchmark, report):
    """The `1.4e-4 faulty at ±1 LSB` context figure quoted next to Table 2."""

    def faulty_probability():
        dist = CodeWidthDistribution.paper_worst_case()
        return dist.prob_device_faulty(DNL_SPEC, N_CODES)

    p_faulty = benchmark(faulty_probability)
    report("Table 2 context — P(device faulty) at ±1 LSB",
           f"reproduced: {p_faulty:.2e}   paper: 1.4e-4")
    assert 1e-5 < p_faulty < 1e-3
