"""Streaming serve overhead benchmark: front door vs batch, replay vs compute.

``repro serve`` routes every request through parsing, journaling, the
submitter bridge and the rolling ledger — none of which may cost
meaningful throughput relative to the batch :meth:`Campaign.run` of the
same scenarios.  Three wall-clock reads, with the byte-identity of all
ledgers asserted first (overhead comparisons only count when the
answers agree):

``serve.streamed_vs_batch_fraction``
    Streamed wall-clock over batch wall-clock for the identical request
    stream (1.0 = free front door; the interesting regressions are
    well above that).
``serve.checkpoint_overhead_fraction``
    The same stream with a checkpoint journal over without — the price
    of per-shard durability.
``serve.replay_speedup``
    Fresh compute over full-journal resume: how much faster a resumed
    server replays finished work than computing it — the reason
    kill-and-resume is cheap.

Wall-clock rows stay report-only (no thresholds; shared CI runners are
hostage to co-tenant load) — the recorded BENCH_*.json trajectory is
the enforcement point.
"""

import asyncio
import io
import json
import time

from repro.campaign import Campaign, Scenario
from repro.production import ExecutionPlan
from repro.production.pool import close_default_pool
from repro.reporting import format_table
from repro.serve import ServeServer

N_DEVICES = 512
REPEATS = 3

SCENARIOS = [
    dict(architecture="flash", method="bist", n_bits=6, q=q,
         n_devices=N_DEVICES, transition_noise_lsb=0.05)
    for q in (2, 3, 4)
] + [
    dict(architecture="flash", method="histogram", n_bits=6,
         n_devices=N_DEVICES),
]

REQUESTS = "".join(json.dumps({"scenario": kwargs}) + "\n"
                   for kwargs in SCENARIOS)

_PLAN = ExecutionPlan(workers=1, shard_devices=128)


def _serve_once(checkpoint=None, resume=None):
    server = ServeServer(plan=_PLAN, seed=7,
                         checkpoint=checkpoint, resume=resume,
                         stdin=io.StringIO("" if resume else REQUESTS),
                         out=io.StringIO())
    start = time.perf_counter()
    assert asyncio.run(server.run()) == 0
    return time.perf_counter() - start, server.rolling.ledger()


def _batch_once():
    start = time.perf_counter()
    result = Campaign([Scenario(**kwargs) for kwargs in SCENARIOS],
                      seed=7).run(plan=_PLAN)
    elapsed = time.perf_counter() - start
    return elapsed, (result.store.campaign_table() + "\n\n"
                     + result.store.summary() + "\n")


def _best(fn, repeats=REPEATS):
    elapsed, value = fn()  # warm-up
    for _ in range(repeats):
        t, value = fn()
        elapsed = min(elapsed, t)
    return elapsed, value


class TestServeOverhead:
    def test_streamed_vs_batch_vs_replay(self, report, bench, tmp_path):
        try:
            batch_s, batch_ledger = _best(_batch_once)
            serve_s, serve_ledger = _best(_serve_once)
            assert serve_ledger == batch_ledger

            ckpt = tmp_path / "bench.ckpt"

            def journaled():
                ckpt.unlink(missing_ok=True)
                return _serve_once(checkpoint=str(ckpt))

            journal_s, journal_ledger = _best(journaled)
            assert journal_ledger == batch_ledger

            # One journaled run to replay from (the timed loop above
            # ends with a complete journal in place).
            replay_s, replay_ledger = _best(
                lambda: _serve_once(resume=str(ckpt)))
            assert replay_ledger == batch_ledger
        finally:
            close_default_pool()

        n = len(SCENARIOS)
        streamed_fraction = serve_s / batch_s
        journal_fraction = journal_s / serve_s
        replay_speedup = serve_s / replay_s
        bench("serve.requests_per_s_streamed", n / serve_s)
        bench("serve.streamed_vs_batch_fraction", streamed_fraction)
        bench("serve.checkpoint_overhead_fraction", journal_fraction)
        bench("serve.replay_speedup", replay_speedup)
        report(
            "streaming serve overhead (streamed vs batch vs replay)",
            format_table(
                ["mode", "wall [s]", "requests/s"],
                [["batch campaign", batch_s, n / batch_s],
                 ["served stream", serve_s, n / serve_s],
                 ["served + checkpoint", journal_s, n / journal_s],
                 ["resume (full replay)", replay_s, n / replay_s]],
                title=f"{n} requests x {N_DEVICES} devices, serial plan; "
                      f"streamed/batch {streamed_fraction:.2f}x, "
                      f"checkpoint {journal_fraction:.2f}x, "
                      f"replay speedup {replay_speedup:.1f}x"))
