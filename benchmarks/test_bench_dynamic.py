"""E10 — Section 2's dynamic-test claim: THD and noise power under the
partial-BIST partition.

The paper states that the same partition (Figure 2) also serves the dynamic
tests (THD, noise power), at the price of more externally observed bits
because the sine stimulus is faster (Equation (1)).  This benchmark measures
the dynamic figures of merit of an ideal and a mismatched converter, shows
that linearity mismatch degrades them in the expected way, and computes the
number of bits the tester must observe for the dynamic stimulus frequency
used.
"""

from __future__ import annotations

import pytest

from repro.adc import FlashADC, IdealADC
from repro.analysis import DynamicAnalyzer
from repro.core import PartialBistPartition, qmin
from repro.reporting import format_table
from repro.signals import snr_ideal_db


def _measurements():
    analyzer = DynamicAnalyzer(n_samples=4096, window="rect")
    devices = {
        "ideal 6-bit": IdealADC(6, sample_rate=1e6),
        "flash 6-bit, sigma 0.21 LSB": FlashADC.from_sigma(
            6, 0.21, seed=41, sample_rate=1e6),
        "flash 6-bit, sigma 0.45 LSB": FlashADC.from_sigma(
            6, 0.45, seed=41, sample_rate=1e6),
    }
    results = {name: analyzer.measure(adc, target_frequency=20e3, seed=2)
               for name, adc in devices.items()}
    return results


def test_bench_dynamic_figures(benchmark, report):
    results = benchmark.pedantic(_measurements, rounds=1, iterations=1)

    rows = [[name, r.thd_db, r.snr_db, r.sinad_db, r.enob]
            for name, r in results.items()]
    body = [format_table(
        ["device", "THD [dB]", "SNR [dB]", "SINAD [dB]", "ENOB [bit]"],
        rows, title="Dynamic test (coherent 20 kHz sine, 4096-point FFT)",
        float_format=".2f")]

    # The partition needed to run this dynamic test through the Figure-2
    # scheme: the 20 kHz stimulus at 1 MS/s needs more than just the LSB.
    q = qmin(20e3, 1e6, 6, dnl_spec_lsb=1.0, inl_spec_lsb=1.0)
    partition = PartialBistPartition(6, q)
    body.append("")
    body.append(format_table(
        ["quantity", "value"],
        [["q_min for the 20 kHz dynamic stimulus", q],
         ["bits still tested on-chip", partition.on_chip_bits],
         ["tester data reduction for 4096 samples",
          partition.test_data_reduction(4096)]]))
    report("Dynamic tests under the partial-BIST partition (section 2)",
           "\n".join(body))

    ideal = results["ideal 6-bit"]
    mismatched = results["flash 6-bit, sigma 0.21 LSB"]
    severe = results["flash 6-bit, sigma 0.45 LSB"]
    # The ideal 6-bit converter reaches close to its theoretical SINAD.
    assert ideal.sinad_db == pytest.approx(snr_ideal_db(6), abs=4.0)
    assert ideal.enob == pytest.approx(6.0, abs=0.7)
    # Linearity mismatch costs SINAD/ENOB, and more mismatch costs more.
    assert mismatched.sinad_db <= ideal.sinad_db + 0.5
    assert severe.sinad_db < ideal.sinad_db
    assert severe.enob < ideal.enob
    # The dynamic stimulus needs more observed bits than the static ramp,
    # but still fewer than the full word.
    assert 1 < q < 6
