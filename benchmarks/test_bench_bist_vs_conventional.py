"""E6 — "A 7-bit counter matches the conventional 4096-sample histogram test."

The paper's concluding comparison: the quality of the BIST with a 7-bit
counter equals that of the conventional production histogram test, which
captures 4096 full-resolution samples per device.  The benchmark runs both
tests on the same Monte-Carlo batch of flash devices and compares their
decisions against the true device linearity and against each other, and also
tabulates the tester data volume each flow needs (the economics motivation).
"""

from __future__ import annotations

import numpy as np

from repro.adc import DevicePopulation, PopulationSpec
from repro.analysis import HistogramTest
from repro.core import BistConfig, BistEngine
from repro.economics import TestPlan
from repro.reporting import format_table

BATCH = 150
DNL_SPEC = 0.5


def _compare():
    population = DevicePopulation(PopulationSpec(size=BATCH, seed=23))
    truly_good = np.array([
        device.transfer_function().max_dnl() <= DNL_SPEC
        for device in population])

    flows = {
        "BIST 4-bit": BistEngine(BistConfig(counter_bits=4,
                                            dnl_spec_lsb=DNL_SPEC)),
        "BIST 7-bit": BistEngine(BistConfig(counter_bits=7,
                                            dnl_spec_lsb=DNL_SPEC)),
        "histogram 4096": HistogramTest.paper_production(
            n_bits=6, dnl_spec_lsb=DNL_SPEC),
    }
    decisions = {}
    for name, flow in flows.items():
        decisions[name] = np.array([
            flow.run(device, rng=i).passed
            for i, device in enumerate(population)])
    return truly_good, decisions


def test_bench_bist_vs_conventional(benchmark, report):
    truly_good, decisions = benchmark.pedantic(_compare, rounds=1,
                                               iterations=1)

    rows = []
    for name, accepted in decisions.items():
        type_i = float(np.mean(truly_good & ~accepted))
        type_ii = float(np.mean(~truly_good & accepted))
        agreement = float(np.mean(accepted == truly_good))
        rows.append([name, int(accepted.sum()), type_i, type_ii, agreement])
    body = [format_table(
        ["flow", "accepted", "type I rate", "type II rate",
         "agreement with truth"], rows,
        title=f"{BATCH}-device batch, DNL spec ±{DNL_SPEC} LSB "
              f"({int(truly_good.sum())} truly good)")]

    agree_7bit_hist = float(np.mean(
        decisions["BIST 7-bit"] == decisions["histogram 4096"]))
    agree_4bit_hist = float(np.mean(
        decisions["BIST 4-bit"] == decisions["histogram 4096"]))
    body.append("")
    body.append(format_table(
        ["pair", "per-device agreement"],
        [["BIST 7-bit vs histogram", agree_7bit_hist],
         ["BIST 4-bit vs histogram", agree_4bit_hist]]))

    data_rows = [
        ["conventional histogram",
         TestPlan.conventional_histogram(6, 4096).data_volume_bits],
        ["partial BIST (q=1)",
         TestPlan.partial_bist(6, 1, 4096).data_volume_bits],
        ["full BIST", TestPlan.full_bist(6, 4096).data_volume_bits],
    ]
    body.append("")
    body.append(format_table(["flow", "bits captured per device"], data_rows,
                             title="Tester data volume"))
    report("BIST vs conventional histogram test", "\n".join(body))

    # The 7-bit BIST tracks the conventional test at least as well as the
    # 4-bit BIST does, and its decisions agree with the histogram test for
    # the overwhelming majority of devices.
    assert agree_7bit_hist >= agree_4bit_hist - 0.02
    assert agree_7bit_hist > 0.9
