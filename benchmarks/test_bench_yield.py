"""E4 — Section-4 yield claims: 30 % good at ±0.5 LSB, ~1e-4 faulty at ±1 LSB.

Two context numbers anchor the paper's experiments: under the artificially
stringent ±0.5 LSB DNL specification only about 30 % of the flash converters
are good, while under the actual ±1 LSB specification the parametric faulty
probability is only about 1.4x10⁻⁴.  Both follow from the code-width
distribution; this benchmark reproduces them three ways (closed form,
Gaussian Monte-Carlo population, behavioural flash population).
"""

from __future__ import annotations

from repro.adc import DevicePopulation, PopulationSpec
from repro.analysis import CodeWidthDistribution
from repro.reporting import format_table

N_CODES = 62
SIGMA = 0.21


def _yields():
    dist = CodeWidthDistribution(sigma_lsb=SIGMA)
    analytic_good_05 = dist.prob_device_good(0.5, N_CODES)
    analytic_faulty_10 = dist.prob_device_faulty(1.0, N_CODES)

    gaussian_pop = DevicePopulation(PopulationSpec(
        sigma_code_width_lsb=SIGMA, size=4000, seed=11,
        architecture="gaussian"))
    flash_pop = DevicePopulation(PopulationSpec(
        sigma_code_width_lsb=SIGMA, size=1000, seed=13,
        architecture="flash"))
    return {
        "analytic_good_05": analytic_good_05,
        "analytic_faulty_10": analytic_faulty_10,
        "gaussian_good_05": gaussian_pop.yield_fraction(0.5),
        "flash_good_05": flash_pop.yield_fraction(0.5),
        "gaussian_good_10": gaussian_pop.yield_fraction(1.0),
        "flash_good_10": flash_pop.yield_fraction(1.0),
        "flash_sigma": flash_pop.empirical_sigma_lsb(),
        "flash_rho": flash_pop.empirical_correlation(),
    }


def test_bench_yield_claims(benchmark, report):
    results = benchmark.pedantic(_yields, rounds=1, iterations=1)

    rows = [
        ["P(good) at ±0.5 LSB, closed form", results["analytic_good_05"],
         "~0.30"],
        ["P(good) at ±0.5 LSB, Gaussian MC", results["gaussian_good_05"],
         "~0.30"],
        ["P(good) at ±0.5 LSB, flash MC", results["flash_good_05"], "~0.30"],
        ["P(faulty) at ±1 LSB, closed form", results["analytic_faulty_10"],
         "1.4e-4"],
        ["P(good) at ±1 LSB, Gaussian MC", results["gaussian_good_10"],
         ">0.999"],
        ["P(good) at ±1 LSB, flash MC", results["flash_good_10"], ">0.999"],
        ["flash population code-width sigma [LSB]", results["flash_sigma"],
         "0.16-0.21"],
        ["flash population width correlation", results["flash_rho"],
         "-1/63 = -0.016"],
    ]
    report("Section 4 yield and population-statistics claims",
           format_table(["quantity", "reproduced", "paper"], rows))

    assert 0.25 < results["analytic_good_05"] < 0.45
    assert 0.25 < results["gaussian_good_05"] < 0.45
    assert 0.20 < results["flash_good_05"] < 0.50
    assert 1e-5 < results["analytic_faulty_10"] < 1e-3
    assert results["gaussian_good_10"] > 0.995
    assert results["flash_good_10"] > 0.995
    assert 0.15 < results["flash_sigma"] < 0.24
    assert -0.05 < results["flash_rho"] < 0.01
