"""Kernel-backend benchmark: per-backend throughput, fast path, memory.

Three scalars back the backend seam's acceptance claims, recorded into
the ``BENCH_*.json`` trajectory:

``kernel.event_fast_path_speedup``
    The arithmetic crossing-index fast path
    (:func:`repro.core.kernel.shared_crossing_indices` on a uniform
    ramp: guess–advance–verify, exactness checked in-kernel) against the
    historical ``np.searchsorted`` per-row reference it replaced, same
    inputs, bit-identical outputs asserted.  Claim: >= 1.5x.
``kernel.compact_memory_ratio_8bit``
    Bytes of an 8-bit code matrix under ``numpy`` (int64) over
    ``numpy-compact`` (int16), measured off the actual kernel outputs.
    Claim: >= 2x (the int16 compaction gives 4x).
``kernel.<backend>.devices_per_s``
    Full-BIST event-path screening throughput per shipping backend; the
    ``numba`` row appears only where the optional dependency is
    installed (the CI matrix leg).

Results across backends are asserted identical (integer outputs) before
any timing is recorded, so a backend can never buy throughput with
wrong answers.  Wall-clock thresholds stay out of the gating tier-1 run
for the usual reason: shared CI runners make timing assertions hostage
to co-tenant load, so the committed trajectory is the enforcement
point.
"""

import time

import numpy as np

from repro.core import BistConfig
from repro.core.backend import available_backends, backend_scope
from repro.core.kernel import batch_quantise_shared, shared_crossing_indices
from repro.production import BatchBistEngine, Wafer, WaferSpec
from repro.reporting import format_table

REPEATS = 5

#: Backends timed by the throughput sweep (numba only when installed).
BACKENDS = [name for name in ("numpy", "numpy-compact", "numba")
            if name in available_backends()]


def _best_of(fn, repeats=REPEATS):
    fn()  # warm-up
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_crossing_fast_path_speedup(bench, report):
    rng = np.random.default_rng(17)
    n_devices, n_levels, n_samples = 5000, 63, 4369
    transitions = np.sort(rng.uniform(-0.55, 0.55, (n_devices, n_levels)),
                          axis=1)
    voltages = np.linspace(-0.6, 0.6, n_samples)

    fast = shared_crossing_indices(transitions, voltages)
    reference = np.searchsorted(voltages, transitions)
    np.testing.assert_array_equal(fast, reference)

    t_fast = _best_of(lambda: shared_crossing_indices(transitions, voltages))
    t_ref = _best_of(lambda: np.searchsorted(voltages, transitions))
    speedup = t_ref / t_fast
    bench("kernel.event_fast_path_speedup", speedup)
    bench("kernel.crossing_fast_path_s", t_fast)
    bench("kernel.crossing_searchsorted_s", t_ref)
    report("kernel: crossing-index fast path",
           format_table(
               ["variant", "seconds", "speedup"],
               [["searchsorted (reference)", f"{t_ref:.4f}", "1.00"],
                ["arithmetic fast path", f"{t_fast:.4f}",
                 f"{speedup:.2f}"]],
               title=f"{n_devices} devices x {n_levels} levels, "
                     f"{n_samples}-sample ramp"))


def test_compaction_memory_ratio(bench, report):
    rng = np.random.default_rng(23)
    # An 8-bit converter: 255 transitions, the acceptance target's shape.
    transitions = np.sort(rng.uniform(-0.55, 0.55, (2000, 255)), axis=1)
    voltages = np.linspace(-0.6, 0.6, 255 * 16 + 1)

    wide = batch_quantise_shared(transitions, voltages)
    with backend_scope("numpy-compact"):
        narrow = batch_quantise_shared(transitions, voltages)
    np.testing.assert_array_equal(wide, narrow)
    ratio = wide.nbytes / narrow.nbytes
    bench("kernel.compact_memory_ratio_8bit", ratio)
    bench("kernel.code_matrix_bytes_numpy", wide.nbytes)
    bench("kernel.code_matrix_bytes_compact", narrow.nbytes)
    report("kernel: 8-bit code-matrix compaction",
           format_table(
               ["backend", "dtype", "bytes", "ratio"],
               [["numpy", str(wide.dtype), str(wide.nbytes), "1.00"],
                ["numpy-compact", str(narrow.dtype), str(narrow.nbytes),
                 f"{ratio:.2f}"]],
               title="2000 devices x (4081 samples as codes)"))


def test_per_backend_event_throughput(bench, report):
    wafer = Wafer.draw(WaferSpec(n_bits=6, sigma_code_width_lsb=0.21,
                                 n_devices=4096), rng=3)
    engine = BatchBistEngine(
        BistConfig(n_bits=6, counter_bits=7, dnl_spec_lsb=1.0))

    results = {}
    rows = []
    for name in BACKENDS:
        with backend_scope(name):
            results[name] = engine.run_wafer(wafer, rng=0)
            seconds = _best_of(lambda: engine.run_wafer(wafer, rng=0))
        rate = wafer.spec.n_devices / seconds
        bench(f"kernel.{name}.devices_per_s", rate)
        rows.append([name, f"{seconds:.4f}", f"{rate:,.0f}"])
    # Integer decisions must agree bit for bit across every backend
    # before the timing means anything.
    reference = results["numpy"]
    for name, result in results.items():
        np.testing.assert_array_equal(reference.passed, result.passed,
                                      err_msg=name)
        np.testing.assert_array_equal(reference.measured_max_dnl_lsb,
                                      result.measured_max_dnl_lsb,
                                      err_msg=name)
    report("kernel: full-BIST event path by backend",
           format_table(["backend", "seconds", "devices/s"], rows,
                        title="4096-die wafer, 6-bit, noise-free"))
