"""E5 — Equation (1): the partial-BIST partition versus stimulus frequency.

Figure 2 and Equation (1) define how many least-significant bits must remain
externally observable as the test-signal frequency rises.  The benchmark
regenerates the q_min curve for the paper's 6-bit converter and for a larger
10-bit one, and checks the qualitative claims: q = 1 (full BIST) at
ramp-slow frequencies, monotone growth with frequency, saturation at the full
resolution near Nyquist-rate stimuli.
"""

from __future__ import annotations

import numpy as np

from repro.core import PartialBistPartition, qmin
from repro.reporting import format_table

F_SAMPLE = 1e6
RATIOS = (1e-5, 1e-4, 1e-3, 1e-2, 0.05, 0.1, 0.25, 0.5)


def _qmin_curves():
    curves = {}
    for n_bits in (6, 10):
        curves[n_bits] = [
            qmin(ratio * F_SAMPLE, F_SAMPLE, n_bits,
                 dnl_spec_lsb=0.5, inl_spec_lsb=0.5)
            for ratio in RATIOS]
    return curves


def test_bench_qmin_partition(benchmark, report):
    curves = benchmark(_qmin_curves)

    rows = []
    for i, ratio in enumerate(RATIOS):
        q6 = curves[6][i]
        q10 = curves[10][i]
        pins6 = PartialBistPartition(6, q6).max_parallel_devices(64)
        rows.append([f"{ratio:.0e}", q6, q10, pins6])
    report("Equation (1) — q_min vs stimulus frequency",
           format_table(
               ["f_stim / f_sample", "q_min (6-bit)", "q_min (10-bit)",
                "6-bit devices in parallel on 64 channels"], rows))

    for n_bits in (6, 10):
        curve = curves[n_bits]
        # Full BIST at ramp-slow stimulus frequencies.
        assert curve[0] == 1
        # Monotone non-decreasing with frequency.
        assert all(b >= a for a, b in zip(curve, curve[1:]))
        # Saturates at the full resolution for Nyquist-rate stimuli.
        assert curve[-1] == n_bits
    # A wider converter needs at least as many observed bits.
    assert all(q10 >= q6 for q6, q10 in zip(curves[6], curves[10]))
