"""E8 — Figures 3–6: the mechanics behind the error analysis.

Four mechanical facts underpin the paper's section 3, illustrated in its
Figures 3 to 6:

* the LSB waveform of a ramp acquisition carries every code width (Fig. 3/4),
* the sampling phase relative to a transition is uniformly distributed, so a
  code of width ``dV`` yields ``floor(dV/ds)`` or ``floor(dV/ds)+1`` counts
  (Fig. 5),
* the resulting acceptance probability of a code width is the trapezoid
  ``h(dV, ds)`` (Fig. 6b),
* combining it with the Gaussian width distribution gives the per-code error
  integrals (Fig. 6a, Equations (6)–(7)).

The benchmark verifies each of these against brute-force simulation.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.adc import FlashADC
from repro.analysis import acceptance_probability, simulate_counts
from repro.analysis.error_model import ErrorModel
from repro.core import BistConfig, BistEngine
from repro.reporting import ascii_plot, format_table


def test_bench_lsb_carries_code_widths(benchmark, report):
    """Figure 3/4: widths measured from the LSB equal the true widths."""

    step = 1.0 / 100  # fine enough for accuracy, coarse enough that an
    # 8-bit counter (256 counts = 2.56 LSB) never saturates

    def measure():
        adc = FlashADC.from_sigma(6, 0.21, seed=99)
        engine = BistEngine(BistConfig(counter_bits=8, dnl_spec_lsb=1.0,
                                       delta_s_lsb=step))
        result = engine.run(adc)
        return adc.transfer_function().code_widths_lsb, \
            result.measured_widths_lsb

    true_widths, measured = benchmark.pedantic(measure, rounds=1,
                                               iterations=1)
    error = measured - true_widths
    report("Figures 3/4 — code widths recovered from the LSB",
           format_table(
               ["quantity", "value"],
               [["codes measured", len(measured)],
                ["worst |width error| [LSB]", float(np.max(np.abs(error)))],
                ["mean |width error| [LSB]", float(np.mean(np.abs(error)))],
                ["counting step ds [LSB]", step]]))
    # The measurement error never exceeds one counting step (Figure 5).
    assert np.max(np.abs(error)) <= step + 1e-9


def test_bench_sampling_uncertainty(benchmark, report):
    """Figure 5: counts take exactly the two adjacent integer values."""

    def histogram():
        widths = np.full((200000, 1), 0.73)
        counts = simulate_counts(widths, delta_s_lsb=0.1,
                                 phase_model="independent", rng=5)
        values, occurrences = np.unique(counts, return_counts=True)
        return values, occurrences / counts.size

    values, fractions = benchmark(histogram)
    report("Figure 5 — count distribution of a 0.73-LSB code at ds = 0.1",
           format_table(["count", "fraction of measurements"],
                        list(zip(values.tolist(), fractions.tolist()))))
    assert set(values.tolist()) == {7, 8}
    # P(count = 8) equals the fractional part 0.3.
    fraction_high = fractions[values.tolist().index(8)]
    assert fraction_high == pytest.approx(0.3, abs=0.01)


def test_bench_acceptance_trapezoid(benchmark, report):
    """Figure 6b: empirical acceptance matches the trapezoid h(dV, ds)."""
    ds, i_min, i_max = 0.1, 6, 14

    def empirical_acceptance():
        widths_axis = np.linspace(0.4, 1.7, 27)
        empirical = []
        for width in widths_axis:
            counts = simulate_counts(np.full((20000, 1), width), ds,
                                     phase_model="independent", rng=7)
            accepted = (counts >= i_min) & (counts <= i_max)
            empirical.append(float(accepted.mean()))
        return widths_axis, np.array(empirical)

    widths_axis, empirical = benchmark.pedantic(empirical_acceptance,
                                                rounds=1, iterations=1)
    analytic = acceptance_probability(widths_axis, ds, i_min, i_max)
    body = [ascii_plot(widths_axis, analytic,
                       title=f"h(dV, ds={ds}) analytic trapezoid "
                             f"(i_min={i_min}, i_max={i_max})")]
    body.append("")
    body.append(format_table(
        ["width [LSB]", "empirical P(accept)", "analytic h"],
        [[w, e, a] for w, e, a in zip(widths_axis[::3], empirical[::3],
                                      analytic[::3])]))
    report("Figure 6b — acceptance probability of a code width",
           "\n".join(body))
    assert np.max(np.abs(empirical - analytic)) < 0.02


def test_bench_per_code_error_integrals(benchmark, report):
    """Equations (6)/(7): closed form versus dense numerical quadrature."""

    def both():
        model = ErrorModel(dnl_spec_lsb=0.5, counter_bits=5)
        return model.per_code(), model.per_code_numeric(points=200001)

    analytic, numeric = benchmark(both)
    report("Equations (6)/(7) — per-code error integrals",
           format_table(
               ["quantity", "closed form", "numerical quadrature"],
               [["P(good)", analytic.p_good, numeric.p_good],
                ["P(accept)", analytic.p_accept, numeric.p_accept],
                ["type I per code", analytic.type_i, numeric.type_i],
                ["type II per code", analytic.type_ii, numeric.type_ii]]))
    assert analytic.type_i == pytest.approx(numeric.type_i, abs=1e-5)
    assert analytic.type_ii == pytest.approx(numeric.type_ii, abs=1e-5)
