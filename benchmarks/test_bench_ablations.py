"""Ablation benchmarks for the design choices DESIGN.md calls out.

These go beyond the paper's own tables: they quantify the consequences of the
modelling assumptions and hardware choices the paper makes in passing.

* deglitch-filter depth versus residual LSB toggles and test outcome,
* the independence approximation of Equation (9) versus the correlated
  ladder model,
* analytic (independent-phase) versus physical (sequential-phase) counting,
* counter overflow policy: saturate-with-flag versus silent wrap-around,
* the Figure-1 area / accuracy / fault-sensitivity trade-off.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.adc import IdealADC
from repro.analysis import (
    BinomialDeviceModel,
    ErrorModel,
    estimate_error_probabilities,
)
from repro.analysis.error_model import delta_s_for_counter
from repro.core import AreaModel, BistConfig, BistEngine, DeglitchFilter
from repro.reporting import format_table
from repro.signals import RampStimulus


def test_bench_deglitch_depth_ablation(benchmark, report):
    """Filter depth versus surviving toggles and verdict under noise."""
    noise_lsb = 0.04
    depths = (0, 1, 2, 3, 4)

    def sweep():
        adc = IdealADC(6)
        outcomes = []
        for depth in depths:
            config = BistConfig(counter_bits=6, dnl_spec_lsb=1.0,
                                transition_noise_lsb=noise_lsb,
                                deglitch_depth=depth, seed=3)
            engine = BistEngine(config)
            result = engine.run(adc)
            raw_lsb = result.record.lsb_waveform
            raw_toggles = DeglitchFilter.count_toggles(raw_lsb)
            if depth > 0:
                filtered = DeglitchFilter(depth=depth).apply(raw_lsb)
                clean_toggles = DeglitchFilter.count_toggles(filtered)
            else:
                clean_toggles = raw_toggles
            outcomes.append((depth, raw_toggles, clean_toggles,
                             result.passed))
        return outcomes

    outcomes = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report("Ablation — deglitch filter depth "
           f"(ideal 6-bit device, {noise_lsb} LSB transition noise)",
           format_table(["depth", "raw LSB toggles", "filtered toggles",
                         "BIST verdict"],
                        [[d, r, c, "pass" if p else "FAIL"]
                         for d, r, c, p in outcomes]))
    by_depth = {d: (r, c, p) for d, r, c, p in outcomes}
    # Without the filter the noisy LSB breaks the measurement; a deep enough
    # filter restores the correct verdict (the paper's "simple digital
    # filter" remark).
    assert not by_depth[0][2]
    assert by_depth[4][2]
    # Filtering never increases the number of toggles.
    assert all(c <= r for _, r, c, _ in outcomes)


def test_bench_correlation_ablation(benchmark, report):
    """Equation (9): independence approximation versus the ladder model."""

    def compare():
        per_code = ErrorModel(dnl_spec_lsb=0.5, counter_bits=5).per_code()
        model = BinomialDeviceModel(per_code, 62)
        independent = model.device().p_good
        ladder = model.device_good_with_correlation(n_mc=150000, seed=3)
        uncorrelated_mc = model.device_good_with_correlation(
            rho=0.0, n_mc=150000, seed=4)
        return independent, ladder, uncorrelated_mc

    independent, ladder, uncorrelated = benchmark.pedantic(compare, rounds=1,
                                                           iterations=1)
    report("Ablation — Equation (9) independence approximation",
           format_table(
               ["model", "P(device good) at ±0.5 LSB"],
               [["product of per-code probabilities (EQ 9)", independent],
                ["Monte-Carlo, ladder correlation -1/63", ladder],
                ["Monte-Carlo, uncorrelated widths", uncorrelated]]))
    # The ladder correlation changes the device-level probability by well
    # under a percentage point at 6 bits — the paper's justification for
    # Equation (9).
    assert ladder == pytest.approx(independent, abs=0.01)
    assert uncorrelated == pytest.approx(independent, abs=0.01)


def test_bench_phase_model_ablation(benchmark, report):
    """Independent-phase (analytic assumption) vs sequential-phase counting."""
    bits = 4
    ds = delta_s_for_counter(bits, 0.5)

    def compare():
        common = dict(n_devices=60000, n_codes=62, sigma_lsb=0.21,
                      dnl_spec_lsb=0.5, delta_s_lsb=ds, counter_bits=bits)
        independent = estimate_error_probabilities(
            phase_model="independent", rng=1, **common)
        sequential = estimate_error_probabilities(
            phase_model="sequential", rng=1, **common)
        return independent, sequential

    independent, sequential = benchmark.pedantic(compare, rounds=1,
                                                 iterations=1)
    report("Ablation — sampling-phase model (4-bit counter, ±0.5 LSB)",
           format_table(
               ["phase model", "type I", "type II", "P(accept)"],
               [["independent per code (analytic assumption)",
                 independent.type_i, independent.type_ii,
                 independent.p_accept],
                ["sequential along the ramp (physical)",
                 sequential.type_i, sequential.type_ii,
                 sequential.p_accept]]))
    # The approximation the paper makes is benign: both phase models give
    # the same error rates to within a few tenths of a percent.
    assert sequential.type_i == pytest.approx(independent.type_i, abs=0.01)
    assert sequential.type_ii == pytest.approx(independent.type_ii, abs=0.01)


def test_bench_counter_policy_ablation(benchmark, report):
    """Saturating versus wrap-around counter on a grossly too-wide code."""

    def compare():
        adc = IdealADC(6)
        from repro.adc import inject_wide_code
        # A code 4.5 LSB wide: counts far beyond a 4-bit counter's range.
        faulty = inject_wide_code(adc, code=20, extra_lsb=3.5)
        verdicts = {}
        for saturate in (True, False):
            config = BistConfig(counter_bits=4, dnl_spec_lsb=1.0,
                                counter_saturate=saturate)
            result = BistEngine(config).run(faulty)
            verdicts[saturate] = result
        return verdicts

    verdicts = benchmark.pedantic(compare, rounds=1, iterations=1)
    rows = [["saturate + overflow flag", "pass" if verdicts[True].passed
             else "FAIL (correct)"],
            ["silent wrap-around", "pass" if verdicts[False].passed
             else "FAIL (correct)"]]
    report("Ablation — counter overflow policy on a 4.5-LSB-wide code",
           format_table(["overflow policy", "BIST verdict"], rows))
    # Both policies must reject the device; the saturating counter does so
    # by design, the wrap-around one relies on the over-range detection.
    assert not verdicts[True].passed
    assert not verdicts[False].passed


def test_bench_area_tradeoff(benchmark, report):
    """Figure 1: accuracy, cost and fault sensitivity versus circuit size."""

    def sweep():
        model = AreaModel(n_bits=6)
        return model.sweep_counter_bits(range(4, 9), dnl_spec_lsb=1.0,
                                        inl_spec_lsb=1.0, deglitch_depth=2)

    estimates = benchmark(sweep)
    rows = [[e.counter_bits, e.gate_count, 100 * e.area_overhead,
             e.max_error_lsb, 1e3 * e.defect_probability]
            for e in estimates]
    report("Figure 1 trade-off — size of the test circuitry",
           format_table(
               ["counter bits", "gate eq.", "area overhead [%]",
                "max error [LSB]", "P(defect in test logic) x1e-3"], rows))
    gates = [e.gate_count for e in estimates]
    errors = [e.max_error_lsb for e in estimates]
    assert gates == sorted(gates)
    assert errors == sorted(errors, reverse=True)
    # Even the largest configuration stays a small fraction of the ADC core.
    assert estimates[-1].area_overhead < 0.25
