"""Throughput benchmark: scalar device loop vs batched production engine.

The production-line claim is quantitative: the batched BIST must screen the
same wafer with the identical decisions at a fraction of the scalar loop's
cost, making million-device Table-1 Monte-Carlo runs feasible.  This bench
measures devices/second for both engines at 1k and 10k devices, asserts the
decisions agree bit for bit, and records the numbers so future BENCH_*.json
trajectories can track them.
"""

import os
import time

import numpy as np
import pytest

from repro.analysis import DynamicAnalyzer, DynamicSpec
from repro.core import BistConfig, BistEngine, PartialBistConfig, \
    PartialBistEngine
from repro.production import (
    BatchBistEngine,
    BatchDynamicSuite,
    BatchHistogramTest,
    BatchPartialBistEngine,
    ExecutionPlan,
    ResultStore,
    ScreeningLine,
    Wafer,
    WaferSpec,
    shared_pool,
)
from repro.reporting import format_table
from repro.telemetry import current_telemetry

#: The speedup the batched engine must deliver at 10k devices.
REQUIRED_SPEEDUP_10K = 20.0

#: The speedup the batched *partial* BIST must deliver on a 1k-device
#: non-flash (SAR) wafer — the PR-2 acceptance criterion.
REQUIRED_PARTIAL_SPEEDUP_1K = 10.0

#: The speedup the batched conventional histogram test must deliver at
#: 1k devices — the PR-3 acceptance criterion.
REQUIRED_HISTOGRAM_SPEEDUP_1K = 10.0

_CONFIG = BistConfig(n_bits=6, counter_bits=7, dnl_spec_lsb=1.0)


def _wafer(n_devices: int) -> Wafer:
    return Wafer.draw(WaferSpec(n_bits=6, sigma_code_width_lsb=0.21,
                                n_devices=n_devices), rng=1997)


def _time_scalar(wafer: Wafer):
    engine = BistEngine(_CONFIG)
    start = time.perf_counter()
    result = engine.run_population(wafer.devices(), rng=0)
    return time.perf_counter() - start, result


def _time_batch(wafer: Wafer, repeats: int = 3):
    engine = BatchBistEngine(_CONFIG)
    engine.run_wafer(wafer, rng=0)  # warm-up (allocator, caches)
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = engine.run_wafer(wafer, rng=0)
        best = min(best, time.perf_counter() - start)
    return best, result


class TestProductionThroughput:
    def test_scalar_vs_batch_devices_per_second(self, report, bench):
        rows = []
        speedup_10k = None
        for n_devices in (1000, 10000):
            wafer = _wafer(n_devices)
            scalar_s, scalar_res = _time_scalar(wafer)
            batch_s, batch_res = _time_batch(wafer)

            # The speedup only counts if the answers are identical.
            np.testing.assert_array_equal(scalar_res.accepted,
                                          batch_res.passed)

            speedup = scalar_s / batch_s
            tag = f"{n_devices // 1000}k"
            bench(f"bist.scalar_devices_per_s_{tag}", n_devices / scalar_s)
            bench(f"bist.batch_devices_per_s_{tag}", n_devices / batch_s)
            bench(f"bist.speedup_{tag}", speedup)
            rows.append([n_devices,
                         n_devices / scalar_s, n_devices / batch_s,
                         speedup])
            if n_devices == 10000:
                speedup_10k = speedup

        report("production-line throughput (scalar vs batch BIST)",
               format_table(
                   ["devices", "scalar devices/s", "batch devices/s",
                    "speedup"],
                   rows,
                   title=f"full BIST, {_CONFIG.counter_bits}-bit counter, "
                         f"DNL ±{_CONFIG.dnl_spec_lsb} LSB "
                         f"(required speedup at 10k: "
                         f">={REQUIRED_SPEEDUP_10K:.0f}x)"))

        assert speedup_10k is not None
        assert speedup_10k >= REQUIRED_SPEEDUP_10K, (
            f"batched engine is only {speedup_10k:.1f}x faster than the "
            f"scalar loop at 10k devices "
            f"(required {REQUIRED_SPEEDUP_10K:.0f}x)")

    def test_500_device_decisions_bit_exact(self):
        """The acceptance criterion's equivalence case, pinned as a bench."""
        wafer = _wafer(500)
        scalar = BistEngine(_CONFIG).run_population(wafer.devices(), rng=0)
        batch = BatchBistEngine(_CONFIG).run_population(wafer, rng=0)
        np.testing.assert_array_equal(scalar.accepted, batch.accepted)
        np.testing.assert_array_equal(scalar.truly_good, batch.truly_good)

    def test_partial_bist_scalar_vs_batch_non_flash(self, report, bench):
        """Batched partial BIST (q=2) on a 1k-device SAR wafer: identical
        decisions, >=10x devices/sec over the scalar loop."""
        wafer = Wafer.draw(WaferSpec(n_bits=6, n_devices=1000,
                                     architecture="sar"), rng=1997)
        config = PartialBistConfig(n_bits=6, q=2, dnl_spec_lsb=0.5,
                                   inl_spec_lsb=1.0)

        scalar_engine = PartialBistEngine(config)
        start = time.perf_counter()
        scalar_passed = np.array([scalar_engine.run(d).passed
                                  for d in wafer.devices()])
        scalar_s = time.perf_counter() - start

        batch_engine = BatchPartialBistEngine(config)
        batch_engine.run_wafer(wafer)  # warm-up
        batch_s = float("inf")
        batch_res = None
        for _ in range(3):
            start = time.perf_counter()
            batch_res = batch_engine.run_wafer(wafer)
            batch_s = min(batch_s, time.perf_counter() - start)

        # The speedup only counts if the answers are identical.
        np.testing.assert_array_equal(scalar_passed, batch_res.passed)

        speedup = scalar_s / batch_s
        bench("partial.scalar_devices_per_s_1k", 1000 / scalar_s)
        bench("partial.batch_devices_per_s_1k", 1000 / batch_s)
        bench("partial.speedup_1k", speedup)
        report("partial BIST throughput (scalar vs batch, SAR wafer)",
               format_table(
                   ["devices", "scalar devices/s", "batch devices/s",
                    "speedup"],
                   [[1000, 1000 / scalar_s, 1000 / batch_s, speedup]],
                   title=f"partial BIST q=2, SAR architecture, DNL "
                         f"±{config.dnl_spec_lsb} LSB (required: "
                         f">={REQUIRED_PARTIAL_SPEEDUP_1K:.0f}x)"))
        assert speedup >= REQUIRED_PARTIAL_SPEEDUP_1K, (
            f"batched partial engine is only {speedup:.1f}x faster than "
            f"the scalar loop at 1k SAR devices "
            f"(required {REQUIRED_PARTIAL_SPEEDUP_1K:.0f}x)")

    def test_histogram_scalar_vs_batch_1k(self, report, bench):
        """Batched conventional histogram test on 1k devices: identical
        decisions and estimates, >=10x devices/sec over the scalar loop
        (the PR-3 acceptance criterion)."""
        wafer = _wafer(1000)
        test = BatchHistogramTest.paper_production(n_bits=6,
                                                   dnl_spec_lsb=0.5)

        start = time.perf_counter()
        scalar = [test.scalar.run(device) for device in wafer.devices()]
        scalar_s = time.perf_counter() - start

        test.run_wafer(wafer)  # warm-up
        batch_s = float("inf")
        batch_res = None
        for _ in range(3):
            start = time.perf_counter()
            batch_res = test.run_wafer(wafer)
            batch_s = min(batch_s, time.perf_counter() - start)

        # The speedup only counts if the answers are identical.
        np.testing.assert_array_equal(
            np.array([r.passed for r in scalar]), batch_res.passed)
        np.testing.assert_array_equal(
            np.array([r.max_dnl for r in scalar]),
            batch_res.measured_max_dnl_lsb)

        speedup = scalar_s / batch_s
        bench("histogram.scalar_devices_per_s_1k", 1000 / scalar_s)
        bench("histogram.batch_devices_per_s_1k", 1000 / batch_s)
        bench("histogram.speedup_1k", speedup)
        report("conventional histogram test (scalar vs batch)",
               format_table(
                   ["devices", "scalar devices/s", "batch devices/s",
                    "speedup"],
                   [[1000, 1000 / scalar_s, 1000 / batch_s, speedup]],
                   title=f"paper production test "
                         f"({test.samples_per_code:g} samples/code, DNL "
                         f"±{test.dnl_spec_lsb} LSB); required: "
                         f">={REQUIRED_HISTOGRAM_SPEEDUP_1K:.0f}x"))
        assert speedup >= REQUIRED_HISTOGRAM_SPEEDUP_1K, (
            f"batched histogram test is only {speedup:.1f}x faster than "
            f"the scalar loop at 1k devices "
            f"(required {REQUIRED_HISTOGRAM_SPEEDUP_1K:.0f}x)")

    def test_dynamic_scalar_vs_batch(self, report, bench):
        """Batched dynamic FFT suite on a 200-device wafer: identical
        decisions and figures of merit, recorded devices/sec + speedup.

        The speedup floor is deliberately modest — both paths are
        FFT-bound, so the batch win is the per-device Python and
        bookkeeping overhead, not an algorithmic change."""
        n_devices = 200
        wafer = _wafer(n_devices)
        suite = BatchDynamicSuite(analyzer=DynamicAnalyzer(n_samples=1024),
                                  spec=DynamicSpec(min_enob=5.0))
        analyzer = suite.analyzer

        start = time.perf_counter()
        scalar = [analyzer.measure(
                      device,
                      amplitude_fraction=suite.amplitude_fraction)
                  for device in wafer.devices()]
        scalar_s = time.perf_counter() - start

        suite.run_wafer(wafer)  # warm-up
        batch_s = float("inf")
        batch_res = None
        for _ in range(3):
            start = time.perf_counter()
            batch_res = suite.run_wafer(wafer)
            batch_s = min(batch_s, time.perf_counter() - start)

        # The speedup only counts if the answers are identical.
        spec = suite.resolved_spec(wafer.spec.n_bits)
        np.testing.assert_array_equal(
            np.array([r.enob for r in scalar]), batch_res.enob)
        np.testing.assert_array_equal(
            np.array([spec.passes(r) for r in scalar]), batch_res.passed)

        speedup = scalar_s / batch_s
        bench("dynamic.scalar_devices_per_s", n_devices / scalar_s)
        bench("dynamic.batch_devices_per_s", n_devices / batch_s)
        bench("dynamic.speedup", speedup)
        report("dynamic FFT suite (scalar vs batch)",
               format_table(
                   ["devices", "scalar devices/s", "batch devices/s",
                    "speedup"],
                   [[n_devices, n_devices / scalar_s,
                     n_devices / batch_s, speedup]],
                   title="single-tone suite, 1024-sample Hann window, "
                         "ENOB >= 5.0"))
        assert speedup > 1.0, (
            f"batched dynamic suite is {speedup:.2f}x the scalar loop "
            f"at {n_devices} devices — no batch win at all")

    def test_bist_vs_histogram_trade_off_at_scale(self, report):
        """The repro-compare table, regenerated as a benchmark artefact:
        one shared 5k-die wafer screened by the full BIST and the
        conventional histogram line."""
        wafer = Wafer.draw(WaferSpec(n_bits=6, sigma_code_width_lsb=0.21,
                                     n_devices=5000), rng=1997)
        config = BistConfig(n_bits=6, counter_bits=7, dnl_spec_lsb=0.5)
        store = ResultStore()
        for method in ("bist", "histogram"):
            line = ScreeningLine(config, method=method,
                                 samples_per_code=64.0)
            line.screen_lot(Wafer(wafer.spec, wafer.transitions,
                                  wafer.wafer_id), rng=0, store=store)
        report("BIST vs conventional histogram line (5k shared dies)",
               store.method_table())
        bist_report, histogram_report = store.reports
        # Same truth on the shared draw; the BIST must stay competitive
        # on escapes while being much cheaper per device.
        assert bist_report.p_good == histogram_report.p_good
        assert bist_report.cost_per_device < \
            histogram_report.cost_per_device / 10.0
        assert abs(bist_report.type_ii - histogram_report.type_ii) < 0.05

    def test_multi_worker_scaling_efficiency(self, report, bench):
        """Devices/sec of the sharded execution layer at 1, 2 and 4
        workers on a 10k-device noisy (stream-path) wafer, each worker
        count served by a warmed persistent pool.

        The hard requirement is the determinism contract: every worker
        count must produce bit-identical decisions.  Efficiency is the
        achieved fraction of the *attainable* speedup —
        ``speedup / min(workers, cores)`` — because workers beyond the
        machine's core count cannot add throughput, only dispatch
        overhead; on a one-core runner the attainable speedup of any
        worker count is 1x and the metric reads "how much of the serial
        throughput survives the scheduling layer".  The raw per-worker
        ratio (``speedup / workers``) and the core count are recorded
        alongside so trajectories across differently-sized runners stay
        comparable.  The rows are the scale-out measurement itself and
        stay report-only: this file is collected by the gating tier-1
        run, and a wall-clock speedup threshold would make the blocking
        suite hostage to co-tenant load on the CI runner."""
        n_devices = 10_000
        wafer = _wafer(n_devices)
        config = BistConfig(n_bits=6, counter_bits=7, dnl_spec_lsb=1.0,
                            transition_noise_lsb=0.05, deglitch_depth=3)
        engine = BatchBistEngine(config)
        cores = os.cpu_count() or 1

        rows = []
        throughput = {}
        reference = None
        bench("scaling.cores", float(cores))
        for workers in (1, 2, 4):
            plan = ExecutionPlan(workers=workers)
            with shared_pool(workers=workers) as pool:
                pool.warm_up()
                engine.run_wafer(_wafer(512), rng=0, plan=plan)  # warm-up
                start = time.perf_counter()
                result = engine.run_wafer(wafer, rng=0, plan=plan)
                elapsed = time.perf_counter() - start
            if reference is None:
                reference = result
            else:
                # Scaling only counts if the answers are identical.
                np.testing.assert_array_equal(reference.passed,
                                              result.passed)
                np.testing.assert_array_equal(
                    reference.measured_max_dnl_lsb,
                    result.measured_max_dnl_lsb)
            throughput[workers] = n_devices / elapsed
            speedup = throughput[workers] / throughput[1]
            attainable = min(workers, cores)
            bench(f"scaling.devices_per_s_workers_{workers}",
                  throughput[workers])
            bench(f"scaling.efficiency_workers_{workers}",
                  speedup / attainable)
            bench(f"scaling.efficiency_per_worker_workers_{workers}",
                  speedup / workers)
            rows.append([workers, throughput[workers], speedup,
                         speedup / attainable, speedup / workers])

        report("multi-worker scaling (noisy full BIST, 10k devices)",
               format_table(
                   ["workers", "devices/s", "speedup",
                    "efficiency (vs attainable)", "per-worker"],
                   rows,
                   title=f"warm persistent pool, sharded stream path, "
                         f"bit-identical decisions at every worker "
                         f"count ({cores} cores available)"))

    def test_million_device_scale_is_feasible(self, report, bench):
        """A 100k slice extrapolates the million-device Table-1 run."""
        wafer = _wafer(100_000)
        batch_s, result = _time_batch(wafer, repeats=1)
        devices_per_s = 100_000 / batch_s
        bench("bist.batch_devices_per_s_100k", devices_per_s)
        report("million-device feasibility",
               f"100k devices screened in {batch_s:.2f} s "
               f"({devices_per_s:,.0f} devices/s); a 1M-device Table-1 "
               f"Monte-Carlo run extrapolates to "
               f"{1_000_000 / devices_per_s:.0f} s")
        # Feasibility bar: a million devices within ten minutes.
        assert 1_000_000 / devices_per_s < 600.0

    def test_telemetry_noop_overhead_under_two_percent(self, report, bench):
        """Disabled telemetry must be free on the production fast path.

        Timing an instrumented vs uninstrumented run head-to-head would
        put a <2% wall-clock delta at the mercy of CI co-tenants, so the
        pin is structural instead: microbenchmark the *entire* disabled
        touchpoint bundle (session lookup, enabled guard, null span,
        null timer record), multiply by a site budget far above the real
        count, and hold that against the measured 1k-device BIST run.
        A serial run crosses ~10 telemetry sites (it is O(shards), not
        O(devices)); the budget allows 100."""
        wafer = _wafer(1000)
        run_s, _ = _time_batch(wafer)

        calls = 50_000
        start = time.perf_counter()
        for _ in range(calls):
            t = current_telemetry()
            if t.enabled:  # pragma: no cover - disabled by construction
                t.count("x")
            with t.span("s"):
                pass
            t.record_timer("t", 0.0)
        per_site = (time.perf_counter() - start) / calls

        site_budget = 100
        overhead = site_budget * per_site / run_s
        bench("telemetry.noop_overhead_fraction", overhead)
        report("telemetry no-op overhead (1k-device BIST path)",
               f"{per_site * 1e9:.0f} ns per disabled touchpoint; "
               f"{site_budget} budgeted sites = "
               f"{overhead * 100:.4f}% of the {run_s * 1e3:.1f} ms run "
               f"(required < 2%)")
        assert overhead < 0.02, (
            f"disabled telemetry costs {overhead * 100:.2f}% of the "
            f"1k-device BIST run (required < 2%)")
